//! The cluster-wide online scheduler: one global manager, a shared
//! arrival stream, and node-local FlowCon sims advancing between
//! time-synchronized barriers.
//!
//! # Event spine
//!
//! The engine owns a single clock that ticks in scheduler quanta.  At
//! every barrier `t = k·quantum` it runs, in this exact order:
//!
//! 1. **Admit** — arrivals with `arrival ≤ t` enter the global FIFO
//!    admission queue (a real scheduler observes submissions at its next
//!    decision point).
//! 2. **Decide** — the [`ClusterPolicy`] sees a read-only
//!    [`ClusterView`] and emits [`SchedAction`]s, which the engine
//!    applies in order and appends to the decision log.
//! 3. **Advance** — every node integrates its own fluid state to
//!    `t + quantum`, completing jobs at their *exact* mid-quantum times
//!    and running node-local FlowCon reconfigurations at their own
//!    cadence.
//!
//! Step 3 is embarrassingly parallel: each `NodeSim` advance is
//! a pure function of that node's state, so the engine can run it
//! sequentially or over the sharded executor and get bit-identical
//! results — the same determinism contract the closed-loop cluster path
//! has, pinned by `crates/cluster/tests/sched_determinism.rs`.
//!
//! # Quantum invariants
//!
//! * Decisions happen only at barriers; node physics (completions,
//!   policy ticks) happen at exact event times inside the quantum.
//! * A preempted job re-enters the queue with its attained service and
//!   remaining work preserved (resume re-draws the ±3% work jitter,
//!   modelling checkpoint-restore noise).
//! * The decision log plus the completion list fully determine a run;
//!   both are `PartialEq` for bit-compare tests.

#![deny(missing_docs)]

mod node;
mod policy;

pub use policy::{
    ClusterPolicy, ClusterView, FifoPolicy, GandivaPolicy, QueuedJobView, RunningJobView,
    SchedAction, SchedPolicyKind, TiresiasPolicy,
};

use std::collections::VecDeque;

use flowcon_core::config::NodeConfig;
use flowcon_dl::ModelId;
use flowcon_metrics::sojourn::{Percentiles, SojournStats};
use flowcon_metrics::stream::StreamStats;
use flowcon_metrics::summary::{makespan_over, Completion};
use flowcon_sim::time::{SimDuration, SimTime};
use flowcon_sim::trace::{TraceKind, Tracer};

use crate::executor::map_sharded;
use crate::policy_kind::PolicyKind;
use node::NodeSim;
use policy::NodeSpan;

/// Tuning knobs of the scheduling engine.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Barrier spacing: how often the cluster policy runs.
    pub quantum: SimDuration,
    /// Concurrent job slots per node (FlowCon shares the node's capacity
    /// among the jobs in its slots).
    pub slots_per_node: usize,
    /// Advance nodes on the caller's thread instead of the sharded
    /// executor.  Results are bit-identical either way; the sequential
    /// mode exists for determinism tests and tiny clusters.
    pub sequential: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            quantum: SimDuration::from_secs(10),
            slots_per_node: 2,
            sequential: false,
        }
    }
}

/// One logged scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Barrier at which the decision was made.
    pub at: SimTime,
    /// The action taken.
    pub action: SchedAction,
}

/// Everything a scheduled cluster run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedOutcome {
    /// Discipline name (from [`ClusterPolicy::name`]).
    pub policy: &'static str,
    /// Every job completion, in observation order (node-major per
    /// quantum), with exact finish times.
    pub completions: Vec<Completion>,
    /// The full decision log — the run's scheduling fingerprint.
    pub decisions: Vec<Decision>,
    /// Cluster-wide stream accounting (utilization, queue depth, rates).
    pub stream: StreamStats,
    /// Total seconds jobs spent in the admission queue (every visit).
    pub total_queue_wait_secs: f64,
    /// SLO tails: per-job sojourn time (exit − arrival, sampled at each
    /// completion) and queue-wait (barrier − queued-since, sampled at
    /// each [`SchedAction::Place`], so one job contributes once per
    /// queue visit).  Deterministic — part of the bit-compare surface.
    pub tails: SojournStats,
    /// Jobs submitted to the cluster.
    pub submitted: usize,
    /// Preemptions applied (suspend-to-queue).
    pub preemptions: u64,
    /// Cross-node migrations applied (same-node no-ops excluded).
    pub migrations: u64,
    /// Node-local FlowCon reconfiguration runs, summed over nodes.
    pub algorithm_runs: u64,
}

impl SchedOutcome {
    /// Time of the last completion (0 when nothing completed).
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.completions.iter().map(|c| c.finished.as_secs_f64()))
    }

    /// Completed job count.
    pub fn completed_jobs(&self) -> usize {
        self.completions.len()
    }

    /// Mean seconds a job spent queued, over submitted jobs.
    pub fn mean_queueing_delay_secs(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.total_queue_wait_secs / self.submitted as f64
        }
    }

    /// p50/p95/p99 of per-visit queue wait in seconds (zeros when nothing
    /// was placed).
    pub fn queue_wait_percentiles(&self) -> Percentiles {
        self.tails.queue_wait_percentiles()
    }

    /// p50/p95/p99 of job sojourn time (exit − arrival) in seconds.
    pub fn sojourn_percentiles(&self) -> Percentiles {
        self.tails.sojourn_percentiles()
    }
}

/// One job the engine knows about: the scheduler-side record that
/// survives preemption round-trips.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArrivalSpec {
    pub(crate) model: ModelId,
    pub(crate) arrival: SimTime,
    pub(crate) work_scale: f64,
}

#[derive(Debug, Clone, Copy)]
struct EngineJob {
    id: u32,
    model: ModelId,
    arrival: SimTime,
    work_scale: f64,
    attained: f64,
    queued_since: SimTime,
}

/// Run the scheduling engine to completion over a materialized arrival
/// list (already sorted by arrival time).
///
/// `tracer` records the structured event stream: a
/// [`TraceKind::SchedBarrier`] span per decision barrier, one instant
/// per applied [`SchedAction`], cluster-level job run/complete spans,
/// and queue-depth counters.  Node-local events (policy reconfigures,
/// water-filling counters) land in per-node forked recorders that are
/// drained back in node-index order at every barrier, so sharded and
/// sequential traced runs produce identical merged sequences.
pub(crate) fn run_sched<T: Tracer + Send>(
    node_cfgs: &[NodeConfig],
    worker_policy: PolicyKind,
    mut policy: Box<dyn ClusterPolicy>,
    config: SchedConfig,
    arrivals: Vec<ArrivalSpec>,
    tracer: &mut T,
) -> SchedOutcome {
    assert!(!node_cfgs.is_empty(), "a cluster needs at least one node");
    assert!(
        config.quantum > SimDuration::ZERO,
        "the scheduler quantum must be positive"
    );
    let quantum = config.quantum;
    let mut nodes: Vec<NodeSim<T>> = node_cfgs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            NodeSim::new(
                *cfg,
                worker_policy.build_send(),
                config.slots_per_node,
                tracer.fork(),
                i as u32,
            )
        })
        .collect();

    let mut queue: VecDeque<EngineJob> = VecDeque::new();
    // gid → node currently running the job (None: queued or done).
    let mut location: Vec<Option<usize>> = vec![None; arrivals.len()];
    let mut next_arrival = 0usize;

    let mut decisions: Vec<Decision> = Vec::new();
    let mut completions: Vec<Completion> = Vec::new();
    let mut total_queue_wait_secs = 0.0f64;
    let mut queue_job_secs = 0.0f64;
    let mut tails = SojournStats::new();
    let mut preemptions = 0u64;
    let mut migrations = 0u64;

    // Recycled view buffers.
    let mut queue_views: Vec<QueuedJobView> = Vec::new();
    let mut spans: Vec<NodeSpan> = Vec::new();
    let mut running: Vec<RunningJobView> = Vec::new();
    let mut actions: Vec<SchedAction> = Vec::new();

    let mut t = SimTime::ZERO;
    loop {
        // 1. Admit arrivals up to the barrier.
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival <= t {
            let a = arrivals[next_arrival];
            queue.push_back(EngineJob {
                id: next_arrival as u32,
                model: a.model,
                arrival: a.arrival,
                work_scale: a.work_scale,
                attained: 0.0,
                queued_since: a.arrival,
            });
            next_arrival += 1;
        }
        let all_idle = nodes.iter().all(NodeSim::is_idle);
        if next_arrival == arrivals.len() && queue.is_empty() && all_idle {
            break;
        }
        // Fast-forward across empty quanta to the first barrier at/after
        // the next arrival, keeping the idle nodes' clocks in sync so a
        // subsequent admit integrates from the barrier, not from stale
        // node time.
        if queue.is_empty() && all_idle {
            let upcoming = arrivals[next_arrival].arrival;
            while t < upcoming {
                t += quantum;
            }
            for node in &mut nodes {
                node.advance_to(t);
            }
            continue;
        }

        // 2. Decide.
        queue_views.clear();
        queue_views.extend(queue.iter().map(|j| QueuedJobView {
            id: j.id,
            arrival: j.arrival,
            attained_cpu_secs: j.attained,
            queued_since: j.queued_since,
        }));
        spans.clear();
        running.clear();
        for node in &nodes {
            let start = running.len();
            node.fill_views(&mut running);
            spans.push(NodeSpan {
                slots: node.slot_count(),
                start,
                len: running.len() - start,
            });
        }
        let view = ClusterView::new(t, &queue_views, &spans, &running);
        actions.clear();
        policy.schedule(&view, &mut actions);
        if T::ENABLED {
            tracer.span_begin(
                t,
                TraceKind::SchedBarrier,
                queue.len() as u32,
                running.len() as u32,
            );
        }

        for &action in &actions {
            decisions.push(Decision { at: t, action });
            match action {
                SchedAction::Place { job, node } => {
                    let pos = queue
                        .iter()
                        .position(|j| j.id == job)
                        .expect("Place must target a queued job");
                    let j = queue.remove(pos).expect("position found above");
                    let wait = t.saturating_since(j.queued_since).as_secs_f64();
                    total_queue_wait_secs += wait;
                    tails.queue_wait.insert(wait);
                    location[j.id as usize] = Some(node);
                    nodes[node].admit(j.id, j.model, j.work_scale, j.arrival, j.attained);
                    if T::ENABLED {
                        tracer.instant(t, TraceKind::SchedPlace, job, node as u32);
                        tracer.span_begin(t, TraceKind::JobRun, job, node as u32);
                    }
                }
                SchedAction::Preempt { job } => {
                    let at = location[job as usize]
                        .take()
                        .expect("Preempt must target a running job");
                    let p = nodes[at].preempt(job);
                    preemptions += 1;
                    queue.push_back(EngineJob {
                        id: job,
                        model: p.model,
                        arrival: p.arrival,
                        work_scale: p.remaining_scale,
                        attained: p.attained_cpu_secs,
                        queued_since: t,
                    });
                    if T::ENABLED {
                        tracer.instant(t, TraceKind::SchedPreempt, job, at as u32);
                        tracer.span_end(t, TraceKind::JobRun, job, at as u32);
                    }
                }
                SchedAction::Migrate { job, node } => {
                    let at = location[job as usize].expect("Migrate must target a running job");
                    if at == node {
                        continue; // logged no-op
                    }
                    let p = nodes[at].preempt(job);
                    nodes[node].admit(
                        job,
                        p.model,
                        p.remaining_scale,
                        p.arrival,
                        p.attained_cpu_secs,
                    );
                    location[job as usize] = Some(node);
                    migrations += 1;
                    if T::ENABLED {
                        tracer.instant(t, TraceKind::SchedMigrate, job, node as u32);
                        tracer.span_end(t, TraceKind::JobRun, job, at as u32);
                        tracer.span_begin(t, TraceKind::JobRun, job, node as u32);
                    }
                }
            }
        }
        queue_job_secs += queue.len() as f64 * quantum.as_secs_f64();
        if T::ENABLED {
            tracer.counter(t, TraceKind::QueueDepth, 0, queue.len() as f64);
        }

        // 3. Advance every node to the next barrier — sequentially or on
        //    the sharded executor, bit-identically.
        let barrier = t + quantum;
        if config.sequential || nodes.len() == 1 {
            for node in &mut nodes {
                node.advance_to(barrier);
            }
        } else {
            let owned = std::mem::take(&mut nodes);
            nodes = map_sharded(
                owned,
                || (),
                |(), mut node| {
                    node.advance_to(barrier);
                    node
                },
            );
        }
        for (ni, node) in nodes.iter_mut().enumerate() {
            if T::ENABLED {
                // Merge this node's per-shard recorder in node-index
                // order — the stable sort that makes sharded ≡
                // sequential.
                tracer.absorb(&mut node.tracer);
            }
            for c in node.completions.drain(..) {
                location[c.gid as usize] = None;
                tails
                    .sojourn
                    .insert(c.finished.saturating_since(c.arrival).as_secs_f64());
                completions.push(Completion {
                    arrival: c.arrival,
                    finished: c.finished,
                    exit_code: 0,
                });
                if T::ENABLED {
                    tracer.span_end(c.finished, TraceKind::JobRun, c.gid, ni as u32);
                    tracer.instant(c.finished, TraceKind::JobComplete, c.gid, ni as u32);
                }
            }
        }
        if T::ENABLED {
            tracer.span_end(barrier, TraceKind::SchedBarrier, queue.len() as u32, 0);
        }
        t = barrier;
    }

    let duration_secs = makespan_over(completions.iter().map(|c| c.finished.as_secs_f64()));
    let stream = StreamStats {
        submitted: arrivals.len() as u64,
        completed: completions.len() as u64,
        duration_secs,
        busy_cpu_secs: nodes.iter().map(|n| n.busy_cpu_secs).sum(),
        queue_job_secs: queue_job_secs + nodes.iter().map(|n| n.live_job_secs).sum::<f64>(),
        capacity_cpu_secs: duration_secs * node_cfgs.iter().map(|c| c.capacity).sum::<f64>(),
    };
    SchedOutcome {
        policy: policy.name(),
        completions,
        decisions,
        stream,
        total_queue_wait_secs,
        tails,
        submitted: arrivals.len(),
        preemptions,
        migrations,
        algorithm_runs: nodes.iter().map(|n| n.algorithm_runs).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_core::config::FlowConConfig;
    use flowcon_dl::WorkloadPlan;

    fn arrivals_of(plan: &WorkloadPlan) -> Vec<ArrivalSpec> {
        plan.jobs
            .iter()
            .map(|j| ArrivalSpec {
                model: j.model,
                arrival: j.arrival,
                work_scale: j.work_scale,
            })
            .collect()
    }

    fn run(kind: SchedPolicyKind, workers: usize, seed: u64, sequential: bool) -> SchedOutcome {
        let plan = WorkloadPlan::random_n(12, seed);
        let cfgs: Vec<NodeConfig> = (0..workers)
            .map(|i| NodeConfig::default().with_seed(0xF10C + i as u64))
            .collect();
        run_sched(
            &cfgs,
            PolicyKind::FlowCon(FlowConConfig::default()),
            kind.build(),
            SchedConfig {
                sequential,
                ..SchedConfig::default()
            },
            arrivals_of(&plan),
            &mut flowcon_sim::trace::NoopTracer,
        )
    }

    #[test]
    fn every_policy_drains_the_whole_workload() {
        for kind in SchedPolicyKind::ALL {
            let out = run(kind, 3, 42, true);
            assert_eq!(out.completed_jobs(), 12, "{} lost jobs", out.policy);
            assert_eq!(out.stream.submitted, 12);
            assert!(out.makespan_secs() > 0.0);
            assert!(out.stream.utilization() > 0.0);
        }
    }

    #[test]
    fn empty_workload_terminates_immediately_with_no_decisions() {
        let cfgs = [NodeConfig::default()];
        let out = run_sched(
            &cfgs,
            PolicyKind::Baseline,
            SchedPolicyKind::Fifo.build(),
            SchedConfig::default(),
            Vec::new(),
            &mut flowcon_sim::trace::NoopTracer,
        );
        assert!(out.completions.is_empty());
        assert!(out.decisions.is_empty());
        assert_eq!(out.makespan_secs(), 0.0);
        assert_eq!(out.mean_queueing_delay_secs(), 0.0);
    }

    #[test]
    fn fifo_queueing_delay_reflects_slot_pressure() {
        // One single-slot node, many jobs: later jobs must wait.
        let plan = WorkloadPlan::random_n(6, 7);
        let cfgs = [NodeConfig::default()];
        let out = run_sched(
            &cfgs,
            PolicyKind::FlowCon(FlowConConfig::default()),
            SchedPolicyKind::Fifo.build(),
            SchedConfig {
                slots_per_node: 1,
                ..SchedConfig::default()
            },
            arrivals_of(&plan),
            &mut flowcon_sim::trace::NoopTracer,
        );
        assert_eq!(out.completed_jobs(), 6);
        assert!(out.mean_queueing_delay_secs() > 0.0);
        assert_eq!(out.preemptions, 0, "FIFO never preempts");
    }

    #[test]
    fn sequential_and_sharded_advance_are_bit_identical() {
        for kind in SchedPolicyKind::ALL {
            let seq = run(kind, 4, 11, true);
            let shard = run(kind, 4, 11, false);
            assert_eq!(seq, shard, "{} diverged across advance modes", kind.name());
        }
    }

    #[test]
    fn a_late_lone_arrival_is_fast_forwarded_to() {
        let cfgs = [NodeConfig::default()];
        let arrivals = vec![ArrivalSpec {
            model: ModelId::MnistTorch,
            arrival: SimTime::from_secs(86_400),
            work_scale: 0.05,
        }];
        let out = run_sched(
            &cfgs,
            PolicyKind::Baseline,
            SchedPolicyKind::Fifo.build(),
            SchedConfig::default(),
            arrivals,
            &mut flowcon_sim::trace::NoopTracer,
        );
        assert_eq!(out.completed_jobs(), 1);
        assert!(out.completions[0].finished >= SimTime::from_secs(86_400));
        // The job was placed at the first barrier at/after its arrival.
        assert!(out.decisions[0].at >= SimTime::from_secs(86_400));
        assert!(
            out.decisions[0].at <= SimTime::from_secs(86_410),
            "placement barrier drifted: {:?}",
            out.decisions[0].at
        );
    }
}
