//! Pluggable cluster scheduling disciplines.
//!
//! A [`ClusterPolicy`] is consulted once per scheduler quantum with a
//! read-only [`ClusterView`] of the admission queue and every node's
//! occupancy, and answers with a list of [`SchedAction`]s (place, preempt,
//! migrate).  The engine applies the actions in order and logs each one,
//! so a policy is a pure decision function of the view plus its own
//! internal state — which is exactly what makes decision logs
//! bit-comparable across runs and shard counts.
//!
//! Three disciplines ship with the crate:
//!
//! * [`FifoPolicy`] — arrival-order placement, no preemption.  The
//!   baseline every trace-driven comparison needs.
//! * [`GandivaPolicy`] — time-slicing with suspend/resume rotation plus
//!   load-balancing migration, after Gandiva (OSDI '18).
//! * [`TiresiasPolicy`] — least-attained-service: the jobs with the
//!   least effective CPU-seconds of service win the slots, with no
//!   duration knowledge at all, after Tiresias (NSDI '19).
//!
//! None of the views expose remaining work or job duration: disciplines
//! that want duration awareness must estimate it from attained service,
//! exactly like their real-world counterparts.

use flowcon_sim::time::{SimDuration, SimTime};

/// A job waiting in the global admission queue, as a policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJobView {
    /// Dense cluster-wide job id, assigned in admission order.
    pub id: u32,
    /// Original submission time (survives preemption round-trips).
    pub arrival: SimTime,
    /// Effective CPU-seconds of service attained so far.  Zero for jobs
    /// that have never run; positive after a preemption.
    pub attained_cpu_secs: f64,
    /// When the job last entered the queue (arrival, or preemption time).
    pub queued_since: SimTime,
}

/// A job currently running on a node, as a policy sees it.
///
/// Deliberately excludes remaining work: disciplines are duration-blind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJobView {
    /// Dense cluster-wide job id.
    pub id: u32,
    /// Effective CPU-seconds of service attained so far (across all
    /// placements of this job).
    pub attained_cpu_secs: f64,
    /// When the current placement started.
    pub placed_at: SimTime,
}

/// Per-node occupancy summary inside the flat running-job arena.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeSpan {
    pub(crate) slots: usize,
    pub(crate) start: usize,
    pub(crate) len: usize,
}

/// Read-only cluster snapshot handed to [`ClusterPolicy::schedule`] at
/// each quantum barrier.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    /// The barrier time at which this decision round runs.
    pub now: SimTime,
    /// The admission queue in FIFO order (head first).
    pub queue: &'a [QueuedJobView],
    nodes: &'a [NodeSpan],
    running: &'a [RunningJobView],
}

impl<'a> ClusterView<'a> {
    pub(crate) fn new(
        now: SimTime,
        queue: &'a [QueuedJobView],
        nodes: &'a [NodeSpan],
        running: &'a [RunningJobView],
    ) -> Self {
        Self {
            now,
            queue,
            nodes,
            running,
        }
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Job slots on `node` (running jobs can never exceed this).
    pub fn slots(&self, node: usize) -> usize {
        self.nodes[node].slots
    }

    /// The jobs currently running on `node`, in slot order.
    pub fn running_on(&self, node: usize) -> &'a [RunningJobView] {
        let span = self.nodes[node];
        &self.running[span.start..span.start + span.len]
    }

    /// Free job slots on `node`.
    pub fn free_slots(&self, node: usize) -> usize {
        let span = self.nodes[node];
        span.slots - span.len
    }

    /// Total job slots across the cluster.
    pub fn total_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.slots).sum()
    }

    /// Total running jobs across the cluster.
    pub fn running_total(&self) -> usize {
        self.running.len()
    }
}

/// One scheduling decision, applied by the engine in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedAction {
    /// Move a queued job onto a node.  The node must have a free slot at
    /// the time the action is applied (earlier actions in the same round
    /// may have freed it).
    Place {
        /// Id of a job currently in the admission queue.
        job: u32,
        /// Target node index.
        node: usize,
    },
    /// Suspend a running job and return it to the back of the admission
    /// queue.  Attained service is preserved; the next placement resumes
    /// from a checkpoint of the remaining work.
    Preempt {
        /// Id of a job currently running on some node.
        job: u32,
    },
    /// Atomically move a running job to another node (checkpoint +
    /// resume, without passing through the queue).  Migrating a job to
    /// the node it already occupies is a logged no-op.
    Migrate {
        /// Id of a job currently running on some node.
        job: u32,
        /// Target node index; must have a free slot unless it is the
        /// job's current node.
        node: usize,
    },
}

/// A cluster-wide scheduling discipline.
///
/// # Contract
///
/// * `schedule` is called exactly once per quantum barrier, after
///   arrivals up to the barrier have been admitted to the queue and
///   before nodes advance to the next barrier.
/// * Actions are applied strictly in emission order.  A `Place` may
///   target a slot freed by an earlier `Preempt` in the same round.
/// * Every decision is appended to the run's decision log, so policies
///   must be deterministic functions of the view and their own state —
///   no wall-clock, no ambient randomness.
/// * Policies never see job durations or remaining work; only arrival
///   times, attained service, and occupancy.
pub trait ClusterPolicy {
    /// Human-readable discipline name (used in tables and logs).
    fn name(&self) -> &'static str;

    /// Append this round's decisions to `actions`.
    ///
    /// The buffer is cleared by the engine before the call; policies
    /// only append.
    fn schedule(&mut self, view: &ClusterView<'_>, actions: &mut Vec<SchedAction>);
}

/// Selector for the built-in disciplines (CLI `--policy` flag, bench
/// presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicyKind {
    /// Arrival-order placement, no preemption ([`FifoPolicy`]).
    Fifo,
    /// Time-slice + migrate ([`GandivaPolicy`]).
    Gandiva,
    /// Least-attained-service ([`TiresiasPolicy`]).
    Tiresias,
}

impl SchedPolicyKind {
    /// Every built-in discipline, in comparison-table order.
    pub const ALL: [SchedPolicyKind; 3] = [
        SchedPolicyKind::Fifo,
        SchedPolicyKind::Gandiva,
        SchedPolicyKind::Tiresias,
    ];

    /// Parse a CLI spelling (`fifo`, `gandiva`, `tiresias`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedPolicyKind::Fifo),
            "gandiva" => Some(SchedPolicyKind::Gandiva),
            "tiresias" => Some(SchedPolicyKind::Tiresias),
            _ => None,
        }
    }

    /// Canonical lowercase name (round-trips through [`parse`](Self::parse)).
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicyKind::Fifo => "fifo",
            SchedPolicyKind::Gandiva => "gandiva",
            SchedPolicyKind::Tiresias => "tiresias",
        }
    }

    /// Construct the discipline with its default parameters.
    pub fn build(&self) -> Box<dyn ClusterPolicy> {
        match self {
            SchedPolicyKind::Fifo => Box::new(FifoPolicy::new()),
            SchedPolicyKind::Gandiva => Box::new(GandivaPolicy::new()),
            SchedPolicyKind::Tiresias => Box::new(TiresiasPolicy::new()),
        }
    }
}

/// Index of the node with the most free slots (ties break toward the
/// lowest index, so decision logs are stable).
fn most_free(free: &[usize]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (idx, &f) in free.iter().enumerate() {
        if f == 0 {
            continue;
        }
        match best {
            Some(b) if free[b] >= f => {}
            _ => best = Some(idx),
        }
    }
    best
}

/// Arrival-order placement without preemption.
///
/// Jobs leave the queue strictly in FIFO order; each is placed on the
/// node with the most free slots (lowest index on ties).  When no slot
/// is free the head of the queue blocks everything behind it — exactly
/// the head-of-line behaviour the preemptive disciplines exist to beat.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    free: Vec<usize>,
}

impl FifoPolicy {
    /// New FIFO discipline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClusterPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn schedule(&mut self, view: &ClusterView<'_>, actions: &mut Vec<SchedAction>) {
        self.free.clear();
        self.free
            .extend((0..view.node_count()).map(|n| view.free_slots(n)));
        for job in view.queue {
            let Some(node) = most_free(&self.free) else {
                break;
            };
            actions.push(SchedAction::Place { job: job.id, node });
            self.free[node] -= 1;
        }
    }
}

/// Gandiva-style time-slicing with load-balancing migration.
///
/// New jobs fill free slots in arrival order.  When jobs are still
/// waiting and every slot is taken, the scheduler rotates: the running
/// job that has held its slot the longest (and for at least
/// [`slice`](Self::with_slice)) is suspended and the waiting job takes
/// its place, giving every job a share of the cluster in round-robin
/// fashion.  When nothing waits, a migration pass moves the most
/// recently placed job from the most loaded node to the least loaded
/// one whenever their occupancy differs by two or more slots.
#[derive(Debug)]
pub struct GandivaPolicy {
    slice: SimDuration,
    free: Vec<usize>,
    waiting: Vec<u32>,
    victims: Vec<u32>,
}

impl GandivaPolicy {
    /// Minimum occupancy gap (in jobs) before a migration fires.
    const IMBALANCE: usize = 2;

    /// New Gandiva discipline with the default 60 s time slice.
    pub fn new() -> Self {
        Self::with_slice(SimDuration::from_secs(60))
    }

    /// New Gandiva discipline with an explicit time slice: a running job
    /// is only rotated out after holding its slot for at least `slice`.
    pub fn with_slice(slice: SimDuration) -> Self {
        Self {
            slice,
            free: Vec::new(),
            waiting: Vec::new(),
            victims: Vec::new(),
        }
    }
}

impl Default for GandivaPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterPolicy for GandivaPolicy {
    fn name(&self) -> &'static str {
        "gandiva"
    }

    fn schedule(&mut self, view: &ClusterView<'_>, actions: &mut Vec<SchedAction>) {
        self.free.clear();
        self.free
            .extend((0..view.node_count()).map(|n| view.free_slots(n)));
        self.waiting.clear();
        self.victims.clear();

        // 1. Fill free slots in arrival order.
        for job in view.queue {
            match most_free(&self.free) {
                Some(node) => {
                    actions.push(SchedAction::Place { job: job.id, node });
                    self.free[node] -= 1;
                }
                None => self.waiting.push(job.id),
            }
        }

        // 2. Rotate: each still-waiting job displaces the longest-held
        //    running job whose slice has expired.
        for &job in &self.waiting {
            let mut victim: Option<(usize, RunningJobView)> = None;
            for node in 0..view.node_count() {
                for r in view.running_on(node) {
                    if self.victims.contains(&r.id) {
                        continue;
                    }
                    if view.now.saturating_since(r.placed_at) < self.slice {
                        continue;
                    }
                    match victim {
                        Some((_, v)) if (v.placed_at, v.id) <= (r.placed_at, r.id) => {}
                        _ => victim = Some((node, *r)),
                    }
                }
            }
            let Some((node, v)) = victim else {
                break;
            };
            self.victims.push(v.id);
            actions.push(SchedAction::Preempt { job: v.id });
            actions.push(SchedAction::Place { job, node });
        }

        // 3. Balance: with no queue pressure, close ≥2-slot occupancy
        //    gaps by migrating the newest placement off the hot node.
        if view.queue.is_empty() && view.node_count() > 1 {
            let mut hot = 0usize;
            let mut cold = 0usize;
            for node in 1..view.node_count() {
                if view.running_on(node).len() > view.running_on(hot).len() {
                    hot = node;
                }
                if view.running_on(node).len() < view.running_on(cold).len() {
                    cold = node;
                }
            }
            let gap = view.running_on(hot).len() - view.running_on(cold).len();
            if gap >= Self::IMBALANCE && view.free_slots(cold) > 0 {
                if let Some(mover) = view
                    .running_on(hot)
                    .iter()
                    .max_by_key(|r| (r.placed_at, r.id))
                {
                    actions.push(SchedAction::Migrate {
                        job: mover.id,
                        node: cold,
                    });
                }
            }
        }
    }
}

/// Where a job sits when the Tiresias ranking runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobLoc {
    Queued,
    Running(usize),
}

/// Tiresias-style least-attained-service scheduling.
///
/// Every quantum, all jobs (queued and running) are ranked by attained
/// service, least first (ties break toward the older job id, i.e.
/// FIFO).  The top `total_slots` jobs deserve the slots: running jobs
/// outside that set are preempted, queued jobs inside it are placed.
/// No duration knowledge is used anywhere — short jobs win slots simply
/// because they have not yet accumulated service.
#[derive(Debug, Default)]
pub struct TiresiasPolicy {
    order: Vec<(f64, u32, JobLoc)>,
    should_run: Vec<u32>,
    free: Vec<usize>,
}

impl TiresiasPolicy {
    /// New Tiresias discipline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClusterPolicy for TiresiasPolicy {
    fn name(&self) -> &'static str {
        "tiresias"
    }

    fn schedule(&mut self, view: &ClusterView<'_>, actions: &mut Vec<SchedAction>) {
        self.order.clear();
        for job in view.queue {
            self.order
                .push((job.attained_cpu_secs, job.id, JobLoc::Queued));
        }
        for node in 0..view.node_count() {
            for r in view.running_on(node) {
                self.order
                    .push((r.attained_cpu_secs, r.id, JobLoc::Running(node)));
            }
        }
        self.order
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let total = view.total_slots();
        self.should_run.clear();
        self.should_run
            .extend(self.order.iter().take(total).map(|&(_, id, _)| id));
        self.should_run.sort_unstable();

        // Preempt running jobs that lost their slot.
        self.free.clear();
        self.free
            .extend((0..view.node_count()).map(|n| view.free_slots(n)));
        for &(_, id, loc) in &self.order {
            if let JobLoc::Running(node) = loc {
                if self.should_run.binary_search(&id).is_err() {
                    actions.push(SchedAction::Preempt { job: id });
                    self.free[node] += 1;
                }
            }
        }

        // Place queued winners, least-attained first.
        for &(_, id, loc) in self.order.iter().take(total) {
            if loc == JobLoc::Queued {
                let node = most_free(&self.free)
                    .expect("preemptions freed at least as many slots as queued winners");
                actions.push(SchedAction::Place { job: id, node });
                self.free[node] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(id: u32, attained: f64) -> QueuedJobView {
        QueuedJobView {
            id,
            arrival: SimTime::ZERO,
            attained_cpu_secs: attained,
            queued_since: SimTime::ZERO,
        }
    }

    fn running(id: u32, attained: f64, placed_secs: u64) -> RunningJobView {
        RunningJobView {
            id,
            attained_cpu_secs: attained,
            placed_at: SimTime::from_secs(placed_secs),
        }
    }

    #[test]
    fn fifo_places_in_arrival_order_onto_the_freest_node() {
        let queue = [queued(0, 0.0), queued(1, 0.0), queued(2, 0.0)];
        let nodes = [
            NodeSpan {
                slots: 2,
                start: 0,
                len: 1,
            },
            NodeSpan {
                slots: 2,
                start: 1,
                len: 0,
            },
        ];
        let arena = [running(9, 5.0, 0)];
        let view = ClusterView::new(SimTime::from_secs(100), &queue, &nodes, &arena);
        let mut actions = Vec::new();
        FifoPolicy::new().schedule(&view, &mut actions);
        assert_eq!(
            actions,
            vec![
                SchedAction::Place { job: 0, node: 1 },
                SchedAction::Place { job: 1, node: 0 },
                SchedAction::Place { job: 2, node: 1 },
            ]
        );
    }

    #[test]
    fn fifo_never_preempts_when_the_cluster_is_full() {
        let queue = [queued(3, 0.0)];
        let nodes = [NodeSpan {
            slots: 1,
            start: 0,
            len: 1,
        }];
        let arena = [running(0, 50.0, 0)];
        let view = ClusterView::new(SimTime::from_secs(500), &queue, &nodes, &arena);
        let mut actions = Vec::new();
        FifoPolicy::new().schedule(&view, &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn tiresias_evicts_the_most_served_job_for_a_fresh_arrival() {
        let queue = [queued(5, 0.0)];
        let nodes = [NodeSpan {
            slots: 2,
            start: 0,
            len: 2,
        }];
        let arena = [running(0, 400.0, 0), running(1, 10.0, 0)];
        let view = ClusterView::new(SimTime::from_secs(100), &queue, &nodes, &arena);
        let mut actions = Vec::new();
        TiresiasPolicy::new().schedule(&view, &mut actions);
        assert_eq!(
            actions,
            vec![
                SchedAction::Preempt { job: 0 },
                SchedAction::Place { job: 5, node: 0 },
            ]
        );
    }

    #[test]
    fn tiresias_breaks_attained_ties_toward_the_older_job() {
        let queue = [queued(7, 0.0), queued(2, 0.0)];
        let nodes = [NodeSpan {
            slots: 1,
            start: 0,
            len: 0,
        }];
        let arena: [RunningJobView; 0] = [];
        let view = ClusterView::new(SimTime::ZERO, &queue, &nodes, &arena);
        let mut actions = Vec::new();
        TiresiasPolicy::new().schedule(&view, &mut actions);
        // Only one slot: the older id (2) wins the tie at 0 attained.
        assert_eq!(actions, vec![SchedAction::Place { job: 2, node: 0 }]);
    }

    #[test]
    fn gandiva_rotates_only_after_the_slice_expires() {
        let queue = [queued(4, 0.0)];
        let nodes = [NodeSpan {
            slots: 1,
            start: 0,
            len: 1,
        }];
        let arena = [running(0, 30.0, 70)];
        // Placed at t=70, now t=100: held 30 s < 60 s slice — no rotation.
        let early = ClusterView::new(SimTime::from_secs(100), &queue, &nodes, &arena);
        let mut actions = Vec::new();
        let mut policy = GandivaPolicy::new();
        policy.schedule(&early, &mut actions);
        assert!(actions.is_empty());

        // Now t=140: held 70 s ≥ slice — rotate.
        let late = ClusterView::new(SimTime::from_secs(140), &queue, &nodes, &arena);
        policy.schedule(&late, &mut actions);
        assert_eq!(
            actions,
            vec![
                SchedAction::Preempt { job: 0 },
                SchedAction::Place { job: 4, node: 0 },
            ]
        );
    }

    #[test]
    fn gandiva_migrates_to_close_a_two_slot_gap() {
        let queue: [QueuedJobView; 0] = [];
        let nodes = [
            NodeSpan {
                slots: 2,
                start: 0,
                len: 2,
            },
            NodeSpan {
                slots: 2,
                start: 2,
                len: 0,
            },
        ];
        let arena = [running(0, 10.0, 0), running(1, 5.0, 50)];
        let view = ClusterView::new(SimTime::from_secs(100), &queue, &nodes, &arena);
        let mut actions = Vec::new();
        GandivaPolicy::new().schedule(&view, &mut actions);
        // The newest placement (job 1) moves to the empty node.
        assert_eq!(actions, vec![SchedAction::Migrate { job: 1, node: 1 }]);
    }

    #[test]
    fn policy_kind_parses_all_spellings() {
        for kind in SchedPolicyKind::ALL {
            assert_eq!(SchedPolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SchedPolicyKind::parse("FIFO"), Some(SchedPolicyKind::Fifo));
        assert_eq!(SchedPolicyKind::parse("srtf"), None);
    }
}
