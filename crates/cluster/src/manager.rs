//! The legacy cluster manager façade.
//!
//! Every `run_*` entry point on [`Manager`] is now a thin `#[deprecated]`
//! shim over [`ClusterSession`] — one
//! builder covering placed plans, streaming plan sources, open-loop job
//! streams, pluggable recorders, and the online scheduler.  See the
//! migration table in [`crate::session`]; the result types here
//! ([`ClusterResult`], [`ClusterRun`], [`OpenLoopRun`], [`PlacedHeadless`])
//! are *not* deprecated — the shims and the builder share them.
//!
//! [`JobStream`]: flowcon_workload::stream::JobStream

use std::sync::Arc;

use flowcon_container::image::shared_dl_defaults;
use flowcon_container::ImageRegistry;
use flowcon_core::config::NodeConfig;
use flowcon_core::dense::{run_headless_dense, DenseScratch, QueueKind};
use flowcon_core::recorder::{FullRecorder, Recorder};
use flowcon_core::session::{SessionResult, StreamResult};
use flowcon_core::worker::RunResult;
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_metrics::stream::StreamStats;
use flowcon_metrics::summary::{makespan_over, CompletionStats};
use flowcon_workload::source::PlanSource;
use flowcon_workload::stream::{Horizon, StreamSource};

use crate::executor;
use crate::placement::PlacementStrategy;
use crate::policy_kind::PolicyKind;
use crate::session::{
    AsDynStream, ClusterOutcome, ClusterSession, ClusterSessionBuilder, DynPlan, Headless,
};

/// Result of a full-observability cluster run.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-worker results, indexed by worker.
    pub workers: Vec<RunResult>,
    /// Which worker each job went to: `(job label, worker index)`.
    pub assignments: Vec<(String, usize)>,
}

impl ClusterResult {
    /// Cluster makespan: the latest completion over all workers.
    ///
    /// Delegates to [`RunSummary::makespan_secs`](flowcon_metrics::summary::RunSummary::makespan_secs) per worker and to the
    /// canonical [`makespan_over`] fold across workers — one makespan
    /// implementation for the whole workspace.
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.summary.makespan_secs()))
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.summary.completions.len())
            .sum()
    }

    /// Completion time of a job by label, searching all workers; delegates
    /// to [`RunSummary::completion_of`](flowcon_metrics::summary::RunSummary::completion_of).
    ///
    /// This is a **linear scan** — O(total completions) per call, which
    /// is fine for a handful of lookups.  Callers probing many labels
    /// should build [`ClusterResult::completions_sorted`] once and
    /// binary-search it per label instead.
    pub fn completion_of(&self, label: &str) -> Option<f64> {
        self.workers
            .iter()
            .find_map(|w| w.summary.completion_of(label))
    }

    /// Every labeled completion as `(label, completion_secs)`, sorted by
    /// label — the amortized counterpart of
    /// [`ClusterResult::completion_of`].  Build it once, then each lookup
    /// is `O(log n)`:
    /// `sorted.binary_search_by(|(l, _)| l.cmp(&label)).map(|i| sorted[i].1)`.
    pub fn completions_sorted(&self) -> Vec<(&str, f64)> {
        let mut sorted: Vec<(&str, f64)> = self
            .workers
            .iter()
            .flat_map(|w| w.summary.completions.iter())
            .map(|c| (c.label.as_str(), c.completion_secs()))
            .collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        sorted
    }
}

/// Result of a recorder-generic cluster run.
///
/// Unlike [`ClusterResult`], the assignment log stores worker indices only
/// (`placements[job]` in plan order) — no label clones, so a headless run
/// holds O(completions) memory in total.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-worker session results, indexed by worker.
    pub workers: Vec<SessionResult<T>>,
    /// Worker index of each job, in plan (arrival) order.
    pub placements: Vec<usize>,
}

impl<T> ClusterRun<T> {
    /// Total simulated events across all workers.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.events_processed).sum()
    }
}

impl ClusterRun<CompletionStats> {
    /// Cluster makespan (canonical [`makespan_over`] fold).
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.output.makespan_secs()))
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.output.len()).sum()
    }

    /// Mean per-job completion time over the whole cluster.
    pub fn mean_completion_secs(&self) -> Option<f64> {
        let n = self.completed_jobs();
        if n == 0 {
            return None;
        }
        let sum: f64 = self
            .workers
            .iter()
            .flat_map(|w| w.output.completions.iter())
            .map(|c| c.completion_secs())
            .sum();
        Some(sum / n as f64)
    }
}

/// Result of an open-loop cluster run.
///
/// Like [`ClusterRun`] there is no placement log — the job→worker mapping
/// is owned by the [`StreamSource`] (deterministic per `worker_id`) — and
/// each per-worker result additionally carries its steady-state
/// [`StreamStats`].
#[derive(Debug)]
pub struct OpenLoopRun<T> {
    /// Per-worker open-loop session results, indexed by worker.
    pub workers: Vec<StreamResult<T>>,
}

impl<T> OpenLoopRun<T> {
    /// Total simulated events across all workers.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.events_processed).sum()
    }

    /// Cluster-wide steady-state totals: per-worker [`StreamStats`] merged
    /// (counts and integrals summed, the observation window extended to
    /// the latest worker).
    pub fn stream_totals(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for w in &self.workers {
            total.merge(&w.stream);
        }
        total
    }

    /// Jobs admitted across the cluster before the horizon.
    pub fn submitted_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.stream.submitted as usize)
            .sum()
    }

    /// Jobs completed across the cluster.
    pub fn completed_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.stream.completed as usize)
            .sum()
    }
}

impl OpenLoopRun<CompletionStats> {
    /// Cluster makespan (canonical [`makespan_over`] fold) — the drain
    /// point of the slowest worker.
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.output.makespan_secs()))
    }
}

/// A headless cluster with every job already placed, ready to simulate.
///
/// Produced by [`ClusterSession::place`](crate::session::ClusterSession::place);
/// [`PlacedHeadless::run`] drives the dense per-worker simulations.
/// Splitting the run at this boundary exists for profiling
/// (`repro profile` clocks the two stages separately).
#[derive(Debug)]
pub struct PlacedHeadless {
    pub(crate) nodes: Vec<NodeConfig>,
    pub(crate) policy: PolicyKind,
    /// All jobs in one arena, sorted by worker (CSR layout).
    pub(crate) flat: Vec<JobRequest>,
    /// `offsets[w]..offsets[w + 1]` slices worker `w`'s jobs out of `flat`.
    pub(crate) offsets: Vec<usize>,
    pub(crate) placements: Vec<usize>,
}

impl PlacedHeadless {
    /// Simulate every worker on the sharded executor through the dense
    /// headless path, with the given event-queue implementation.
    pub fn run(self, queue: QueueKind) -> ClusterRun<CompletionStats> {
        let policy = self.policy;
        let work: Vec<(usize, NodeConfig)> = self.nodes.iter().copied().enumerate().collect();
        let flat = &self.flat[..];
        let offsets = &self.offsets[..];
        let workers = executor::map_sharded(work, DenseScratch::new, |scratch, (idx, node)| {
            let jobs = &flat[offsets[idx]..offsets[idx + 1]];
            run_headless_dense(node, jobs, policy.build(), queue, scratch)
        });
        ClusterRun {
            workers,
            placements: self.placements,
        }
    }
}

/// The manager: placement + per-worker node configs + per-worker policy.
///
/// Construction still works (the config triple is a convenient bundle),
/// but every run method is a deprecated shim over
/// [`ClusterSession`].
pub struct Manager<P: PlacementStrategy> {
    nodes: Vec<NodeConfig>,
    policy: PolicyKind,
    strategy: P,
    images: Arc<ImageRegistry>,
}

impl<P: PlacementStrategy> Manager<P> {
    /// A manager over `workers` identical nodes.
    pub fn new(workers: usize, node: NodeConfig, policy: PolicyKind, strategy: P) -> Self {
        assert!(workers > 0, "a cluster needs at least one worker");
        // Give each worker its own seed stream so workloads don't correlate.
        let nodes = (0..workers)
            .map(|i| node.with_seed(node.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        Self::with_nodes(nodes, policy, strategy)
    }

    /// A manager over heterogeneous nodes.
    pub fn with_nodes(nodes: Vec<NodeConfig>, policy: PolicyKind, strategy: P) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one worker");
        Manager {
            nodes,
            policy,
            strategy,
            images: shared_dl_defaults(),
        }
    }

    /// Use a custom image registry, shared by every worker in the cluster
    /// (defaults to the process-wide DL catalog).
    pub fn with_images(mut self, images: Arc<ImageRegistry>) -> Self {
        self.images = images;
        self
    }
}

impl<P: PlacementStrategy + 'static> Manager<P> {
    /// The builder carrying this manager's exact configuration — what
    /// every shim below delegates to.
    fn into_builder(self) -> ClusterSessionBuilder<'static, Headless> {
        ClusterSession::builder()
            .node_configs(self.nodes)
            .policy(self.policy)
            .placement(self.strategy)
            .images(self.images)
    }

    fn run_owned_impl(self, plan: WorkloadPlan) -> ClusterResult {
        let labels: Vec<String> = plan.jobs.iter().map(|j| j.label.clone()).collect();
        let outcome = self
            .into_builder()
            .plan(plan)
            .recorder(|_| FullRecorder::new())
            .build()
            .run();
        let workers = outcome.workers.into_iter().map(RunResult::from).collect();
        ClusterResult {
            workers,
            assignments: labels.into_iter().zip(outcome.placements).collect(),
        }
    }

    /// Place every job, run every worker, and gather the results.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run(self, plan: &WorkloadPlan) -> ClusterResult {
        self.run_owned_impl(plan.clone())
    }

    /// Place every job (moving it into its worker's plan), then run one
    /// full-observability session per worker.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_owned(self, plan: WorkloadPlan) -> ClusterResult {
        self.run_owned_impl(plan)
    }

    /// Run the cluster with a custom per-worker [`Recorder`] (the factory
    /// receives the worker index).
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_recorded<R, F>(self, plan: WorkloadPlan, make: F) -> ClusterRun<R::Output>
    where
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let outcome = self.into_builder().plan(plan).recorder(make).build().run();
        ClusterRun {
            workers: outcome.workers,
            placements: outcome.placements,
        }
    }

    fn run_headless_impl(
        self,
        plan: WorkloadPlan,
        queue: QueueKind,
    ) -> ClusterRun<CompletionStats> {
        let outcome = self.into_builder().plan(plan).queue(queue).build().run();
        ClusterRun {
            workers: outcome.workers,
            placements: outcome.placements,
        }
    }

    /// Run the cluster headless: label-free completions and makespan only
    /// (the million-worker configuration; dense path, default queue).
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_headless(self, plan: WorkloadPlan) -> ClusterRun<CompletionStats> {
        self.run_headless_impl(plan, QueueKind::default())
    }

    /// [`Manager::run_headless`] with an explicit event-queue choice.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_headless_with(
        self,
        plan: WorkloadPlan,
        queue: QueueKind,
    ) -> ClusterRun<CompletionStats> {
        self.run_headless_impl(plan, queue)
    }

    /// Place every job for a headless run without simulating anything yet.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn place_headless(self, plan: WorkloadPlan) -> PlacedHeadless {
        self.into_builder().plan(plan).build().place()
    }

    /// Run the cluster off a streaming [`PlanSource`] with a custom
    /// per-worker [`Recorder`] factory.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_source_recorded<S, R, F>(self, source: &S, make: F) -> ClusterRun<R::Output>
    where
        S: PlanSource + ?Sized,
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let source = DynPlan(source);
        let outcome = self
            .into_builder()
            .source(&source)
            .recorder(make)
            .build()
            .run();
        ClusterRun {
            workers: outcome.workers,
            placements: Vec::new(),
        }
    }

    /// Run the cluster headless off a streaming [`PlanSource`]: label-free
    /// completions only, the 10k-worker trace-replay configuration.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_source<S: PlanSource + ?Sized>(self, source: &S) -> ClusterRun<CompletionStats> {
        let source = DynPlan(source);
        let outcome = self.into_builder().source(&source).build().run();
        ClusterRun {
            workers: outcome.workers,
            placements: Vec::new(),
        }
    }

    /// Run the cluster **open-loop** with a custom per-worker [`Recorder`]
    /// factory: every worker pulls its own stream off `source` and admits
    /// arrivals mid-run until `horizon` trips, then drains.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_open_loop_recorded<S, R, F>(
        self,
        source: &S,
        horizon: Horizon,
        make: F,
    ) -> OpenLoopRun<R::Output>
    where
        S: StreamSource + ?Sized,
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let source = AsDynStream(source);
        let outcome = self
            .into_builder()
            .stream(&source, horizon)
            .recorder(make)
            .build()
            .run();
        OpenLoopRun {
            workers: rejoin_streams(outcome),
        }
    }

    /// Run the cluster **open-loop and headless**: label-free completions
    /// plus steady-state [`StreamStats`] per worker.
    #[deprecated(
        since = "0.1.0",
        note = "configure the same run through ClusterSession::builder(); see the migration table in flowcon_cluster::session"
    )]
    pub fn run_open_loop<S: StreamSource + ?Sized>(
        self,
        source: &S,
        horizon: Horizon,
    ) -> OpenLoopRun<CompletionStats> {
        let source = AsDynStream(source);
        let outcome = self.into_builder().stream(&source, horizon).build().run();
        OpenLoopRun {
            workers: rejoin_streams(outcome),
        }
    }
}

/// Zip a stream outcome's parallel vectors back into the per-worker
/// [`StreamResult`]s the legacy [`OpenLoopRun`] shape carries.
fn rejoin_streams<T>(outcome: ClusterOutcome<T>) -> Vec<StreamResult<T>> {
    outcome
        .workers
        .into_iter()
        .zip(outcome.streams)
        .map(|(w, stream)| StreamResult {
            output: w.output,
            events_processed: w.events_processed,
            scheduler_overhead_cpu_secs: w.scheduler_overhead_cpu_secs,
            stream,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    // The shims must keep behaving exactly like the builder they wrap, so
    // these tests intentionally exercise the deprecated surface.
    #![allow(deprecated)]

    use super::*;
    use crate::placement::{RoundRobin, Spread};
    use flowcon_core::config::FlowConConfig;

    fn node() -> NodeConfig {
        NodeConfig::default()
    }

    fn manager(workers: usize) -> Manager<RoundRobin> {
        Manager::new(workers, node(), PolicyKind::Baseline, RoundRobin::default())
    }

    #[test]
    fn run_shim_places_round_robin_and_completes_everything() {
        let plan = WorkloadPlan::random_n(10, 7);
        let result = manager(2).run(&plan);
        assert_eq!(result.completed_jobs(), 10);
        assert_eq!(result.assignments.len(), 10);
        let w0 = result.assignments.iter().filter(|(_, w)| *w == 0).count();
        assert_eq!(w0, 5);
    }

    #[test]
    fn run_shim_matches_the_builder_bit_for_bit() {
        let plan = WorkloadPlan::random_n(12, 5);
        let shim = manager(3).run_headless(plan.clone());
        let direct = ClusterSession::builder()
            .nodes(3, node())
            .plan(plan)
            .build()
            .run();
        assert_eq!(shim.placements, direct.placements);
        assert_eq!(shim.events_processed(), direct.events_processed());
        for (a, b) in shim.workers.iter().zip(&direct.workers) {
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn completion_lookup_spans_workers() {
        let plan = WorkloadPlan::random_n(4, 3);
        let result = manager(2).run(&plan);
        for job in &plan.jobs {
            assert!(
                result.completion_of(&job.label).is_some(),
                "missing {}",
                job.label
            );
        }
        assert!(result.completion_of("nonexistent").is_none());
    }

    #[test]
    fn completions_sorted_agrees_with_the_linear_lookup() {
        let plan = WorkloadPlan::random_n(8, 3);
        let result = manager(3).run(&plan);
        let sorted = result.completions_sorted();
        assert_eq!(sorted.len(), 8);
        assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted");
        for job in &plan.jobs {
            let i = sorted
                .binary_search_by(|&(l, _)| l.cmp(job.label.as_str()))
                .unwrap_or_else(|_| panic!("missing {}", job.label));
            assert_eq!(Some(sorted[i].1), result.completion_of(&job.label));
        }
    }

    #[test]
    fn headless_flowcon_conserves_jobs_at_plausible_makespan() {
        let plan = WorkloadPlan::random_n(12, 5);
        let build = |kind: PolicyKind| Manager::new(3, node(), kind, RoundRobin::default());
        let fc = PolicyKind::FlowCon(FlowConConfig::default());
        let full = build(fc).run(&plan);
        let headless = build(fc).run_headless(plan);
        assert_eq!(headless.completed_jobs(), 12);
        // Different eval-noise stream, same physics scale: within a few %.
        let rel = (headless.makespan_secs() - full.makespan_secs()).abs() / full.makespan_secs();
        assert!(rel < 0.05, "headless makespan off by {:.1}%", rel * 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Manager::new(0, node(), PolicyKind::Baseline, Spread);
    }

    #[test]
    fn source_shim_matches_the_equivalent_placed_run() {
        use flowcon_workload::{BoundTrace, TraceSource};
        let plan = WorkloadPlan::random_n(12, 5);
        let source = TraceSource::new(BoundTrace::from_plan(plan.clone()), 3);
        let placed = manager(3).run_headless(plan);
        let streamed = manager(3).run_source(&source);
        assert_eq!(streamed.completed_jobs(), 12);
        assert!(streamed.placements.is_empty(), "the source owns placement");
        for (a, b) in placed.workers.iter().zip(&streamed.workers) {
            assert_eq!(a.output, b.output, "per-worker stats diverged");
            assert_eq!(a.events_processed, b.events_processed);
        }
    }

    #[test]
    fn open_loop_shim_accepts_cyclic_trace_sources() {
        use flowcon_workload::TraceStreamSource;
        // A 6-job plan cycled across 3 workers: each worker replays its
        // 2-row slice repeatedly until the 5-job-per-worker horizon.
        let plan = WorkloadPlan::random_n(6, 11);
        let source =
            TraceStreamSource::new(flowcon_workload::BoundTrace::from_plan(plan).unlabeled(), 3)
                .cyclic();
        let run = manager(3).run_open_loop(&source, Horizon::jobs(5));
        assert_eq!(run.submitted_jobs(), 15, "cyclic replay is unbounded");
        assert_eq!(run.completed_jobs(), 15);
        assert!(run.makespan_secs() > 0.0);
        assert!(run.stream_totals().utilization() > 0.0);
    }

    #[test]
    fn synthetic_source_drives_every_worker() {
        use flowcon_workload::{ArrivalProcess, SyntheticSource};
        let source = SyntheticSource::new(ArrivalProcess::poisson(0.05), 2, 7).unlabeled();
        let run = manager(4).run_source(&source);
        assert_eq!(run.workers.len(), 4);
        assert_eq!(run.completed_jobs(), 4 * 2);
        assert!(run.makespan_secs() > 0.0);
    }
}
