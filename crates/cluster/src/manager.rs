//! Result carriers of the dense headless cluster path.
//!
//! The `Manager` façade that used to live here is gone: its ten `run_*`
//! entry points shipped one release as `#[deprecated]` shims over
//! [`ClusterSession`](crate::session::ClusterSession) (bit-compared
//! against the builder while they lived) and have been **removed** along
//! with the façade itself.  The migration table in [`crate::session`]
//! maps every removed entry point onto the builder.
//!
//! What remains are the two result types the builder's headless path
//! still produces: [`PlacedHeadless`] (a placed-but-unsimulated cluster,
//! the stage boundary `repro profile` clocks) and [`ClusterRun`] (the
//! per-worker results of driving it).

use flowcon_core::config::NodeConfig;
use flowcon_core::dense::{run_headless_dense, DenseScratch, QueueKind};
use flowcon_core::session::SessionResult;
use flowcon_dl::workload::JobRequest;
use flowcon_metrics::summary::{makespan_over, CompletionStats};

use crate::executor;
use crate::policy_kind::PolicyKind;

/// Result of a recorder-generic cluster run.
///
/// The assignment log stores worker indices only (`placements[job]` in
/// plan order) — no label clones, so a headless run holds O(completions)
/// memory in total.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-worker session results, indexed by worker.
    pub workers: Vec<SessionResult<T>>,
    /// Worker index of each job, in plan (arrival) order.
    pub placements: Vec<usize>,
}

impl<T> ClusterRun<T> {
    /// Total simulated events across all workers.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.events_processed).sum()
    }
}

impl ClusterRun<CompletionStats> {
    /// Cluster makespan (canonical [`makespan_over`] fold).
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.output.makespan_secs()))
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.output.len()).sum()
    }

    /// Mean per-job completion time over the whole cluster.
    pub fn mean_completion_secs(&self) -> Option<f64> {
        let n = self.completed_jobs();
        if n == 0 {
            return None;
        }
        let sum: f64 = self
            .workers
            .iter()
            .flat_map(|w| w.output.completions.iter())
            .map(|c| c.completion_secs())
            .sum();
        Some(sum / n as f64)
    }
}

/// A headless cluster with every job already placed, ready to simulate.
///
/// Produced by [`ClusterSession::place`](crate::session::ClusterSession::place);
/// [`PlacedHeadless::run`] drives the dense per-worker simulations.
/// Splitting the run at this boundary exists for profiling
/// (`repro profile` clocks the two stages separately).
#[derive(Debug)]
pub struct PlacedHeadless {
    pub(crate) nodes: Vec<NodeConfig>,
    pub(crate) policy: PolicyKind,
    /// All jobs in one arena, sorted by worker (CSR layout).
    pub(crate) flat: Vec<JobRequest>,
    /// `offsets[w]..offsets[w + 1]` slices worker `w`'s jobs out of `flat`.
    pub(crate) offsets: Vec<usize>,
    pub(crate) placements: Vec<usize>,
}

impl PlacedHeadless {
    /// Simulate every worker on the sharded executor through the dense
    /// headless path, with the given event-queue implementation.
    pub fn run(self, queue: QueueKind) -> ClusterRun<CompletionStats> {
        let policy = self.policy;
        let work: Vec<(usize, NodeConfig)> = self.nodes.iter().copied().enumerate().collect();
        let flat = &self.flat[..];
        let offsets = &self.offsets[..];
        let workers = executor::map_sharded(work, DenseScratch::new, |scratch, (idx, node)| {
            let jobs = &flat[offsets[idx]..offsets[idx + 1]];
            run_headless_dense(node, jobs, policy.build(), queue, scratch)
        });
        ClusterRun {
            workers,
            placements: self.placements,
        }
    }
}
