//! The cluster manager.
//!
//! Accepts a workload plan, places each job on a worker (in arrival order,
//! using a [`PlacementStrategy`]), then drives one
//! [`Session`] per worker on the sharded
//! [`crate::executor`] pool — at most `available_parallelism` OS threads
//! regardless of cluster size, with one recycled [`WorkerScratch`] per
//! shard and **one shared image registry for the whole cluster** (the PR-2
//! profile showed a fresh registry per worker dominating fixed overhead).
//! Workers are independent once jobs are assigned, exactly as in the
//! paper's architecture where managers never participate in worker-side
//! reconfiguration.
//!
//! Observability is chosen per run: [`Manager::run_owned`] records full
//! summaries (today's behavior), [`Manager::run_headless`] keeps label-free
//! completions only — O(completions) memory, which is what makes
//! 10k-worker clusters practical — and [`Manager::run_recorded`] accepts
//! any [`Recorder`] factory.
//!
//! Workloads arrive either as one materialized [`WorkloadPlan`] the
//! manager places job by job, or as a streaming
//! [`PlanSource`] ([`Manager::run_source`] /
//! [`Manager::run_source_recorded`]): each executor shard pulls the plan
//! of the worker it is about to simulate, so one arrival trace drives the
//! whole cluster without 10k plans ever existing at once.
//!
//! Both of those are *closed* workloads — the job set is fixed before any
//! worker starts.  [`Manager::run_open_loop`] is the **open-loop** mode:
//! each worker pulls an unbounded [`JobStream`] off a [`StreamSource`] and
//! admits arrivals mid-run until a [`Horizon`] trips, reporting
//! steady-state [`StreamStats`] (arrival vs. completion rate, queue depth,
//! utilization) instead of just a makespan.
//!
//! [`JobStream`]: flowcon_workload::stream::JobStream

use std::sync::Arc;

use flowcon_container::image::shared_dl_defaults;
use flowcon_container::ImageRegistry;
use flowcon_core::config::NodeConfig;
use flowcon_core::dense::{run_headless_dense, DenseScratch, QueueKind};
use flowcon_core::recorder::{CompletionsOnly, FullRecorder, Recorder};
use flowcon_core::session::{Session, SessionResult, StreamResult};
use flowcon_core::worker::{RunResult, WorkerScratch};
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_metrics::stream::StreamStats;
use flowcon_metrics::summary::{makespan_over, CompletionStats};
use flowcon_workload::source::PlanSource;
use flowcon_workload::stream::{Horizon, StreamSource};

use crate::executor;
use crate::placement::{record_assignment, PlacementStrategy, WorkerLoad};
use crate::policy_kind::PolicyKind;

/// Result of a full-observability cluster run.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-worker results, indexed by worker.
    pub workers: Vec<RunResult>,
    /// Which worker each job went to: `(job label, worker index)`.
    pub assignments: Vec<(String, usize)>,
}

impl ClusterResult {
    /// Cluster makespan: the latest completion over all workers.
    ///
    /// Delegates to [`RunSummary::makespan_secs`](flowcon_metrics::summary::RunSummary::makespan_secs) per worker and to the
    /// canonical [`makespan_over`] fold across workers — one makespan
    /// implementation for the whole workspace.
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.summary.makespan_secs()))
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.summary.completions.len())
            .sum()
    }

    /// Completion time of a job by label, searching all workers; delegates
    /// to [`RunSummary::completion_of`](flowcon_metrics::summary::RunSummary::completion_of).
    pub fn completion_of(&self, label: &str) -> Option<f64> {
        self.workers
            .iter()
            .find_map(|w| w.summary.completion_of(label))
    }
}

/// Result of a recorder-generic cluster run ([`Manager::run_recorded`],
/// [`Manager::run_headless`]).
///
/// Unlike [`ClusterResult`], the assignment log stores worker indices only
/// (`placements[job]` in plan order) — no label clones, so a headless run
/// holds O(completions) memory in total.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-worker session results, indexed by worker.
    pub workers: Vec<SessionResult<T>>,
    /// Worker index of each job, in plan (arrival) order.
    pub placements: Vec<usize>,
}

impl<T> ClusterRun<T> {
    /// Total simulated events across all workers.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.events_processed).sum()
    }
}

impl ClusterRun<CompletionStats> {
    /// Cluster makespan (canonical [`makespan_over`] fold).
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.output.makespan_secs()))
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.output.len()).sum()
    }

    /// Mean per-job completion time over the whole cluster.
    pub fn mean_completion_secs(&self) -> Option<f64> {
        let n = self.completed_jobs();
        if n == 0 {
            return None;
        }
        let sum: f64 = self
            .workers
            .iter()
            .flat_map(|w| w.output.completions.iter())
            .map(|c| c.completion_secs())
            .sum();
        Some(sum / n as f64)
    }
}

/// Result of an open-loop cluster run ([`Manager::run_open_loop`]).
///
/// Like [`ClusterRun`] there is no placement log — the job→worker mapping
/// is owned by the [`StreamSource`] (deterministic per `worker_id`) — and
/// each per-worker result additionally carries its steady-state
/// [`StreamStats`].
#[derive(Debug)]
pub struct OpenLoopRun<T> {
    /// Per-worker open-loop session results, indexed by worker.
    pub workers: Vec<StreamResult<T>>,
}

impl<T> OpenLoopRun<T> {
    /// Total simulated events across all workers.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.events_processed).sum()
    }

    /// Cluster-wide steady-state totals: per-worker [`StreamStats`] merged
    /// (counts and integrals summed, the observation window extended to
    /// the latest worker).
    pub fn stream_totals(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for w in &self.workers {
            total.merge(&w.stream);
        }
        total
    }

    /// Jobs admitted across the cluster before the horizon.
    pub fn submitted_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.stream.submitted as usize)
            .sum()
    }

    /// Jobs completed across the cluster.
    pub fn completed_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.stream.completed as usize)
            .sum()
    }
}

impl OpenLoopRun<CompletionStats> {
    /// Cluster makespan (canonical [`makespan_over`] fold) — the drain
    /// point of the slowest worker.
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.output.makespan_secs()))
    }
}

/// A headless cluster with every job already placed, ready to simulate.
///
/// Produced by [`Manager::place_headless`]; [`PlacedHeadless::run`] drives
/// the dense per-worker simulations.  Splitting the run at this boundary
/// exists for profiling (`repro profile` clocks the two stages separately)
/// — [`Manager::run_headless_with`] is the one-call form.
#[derive(Debug)]
pub struct PlacedHeadless {
    nodes: Vec<NodeConfig>,
    policy: PolicyKind,
    /// All jobs in one arena, sorted by worker (CSR layout).
    flat: Vec<JobRequest>,
    /// `offsets[w]..offsets[w + 1]` slices worker `w`'s jobs out of `flat`.
    offsets: Vec<usize>,
    placements: Vec<usize>,
}

impl PlacedHeadless {
    /// Simulate every worker on the sharded executor through the dense
    /// headless path, with the given event-queue implementation.
    pub fn run(self, queue: QueueKind) -> ClusterRun<CompletionStats> {
        let policy = self.policy;
        let work: Vec<(usize, NodeConfig)> = self.nodes.iter().copied().enumerate().collect();
        let flat = &self.flat[..];
        let offsets = &self.offsets[..];
        let workers = executor::map_sharded(work, DenseScratch::new, |scratch, (idx, node)| {
            let jobs = &flat[offsets[idx]..offsets[idx + 1]];
            run_headless_dense(node, jobs, policy.build(), queue, scratch)
        });
        ClusterRun {
            workers,
            placements: self.placements,
        }
    }
}

/// The manager: placement + per-worker node configs + per-worker policy.
pub struct Manager<P: PlacementStrategy> {
    nodes: Vec<NodeConfig>,
    policy: PolicyKind,
    strategy: P,
    images: Arc<ImageRegistry>,
}

impl<P: PlacementStrategy> Manager<P> {
    /// A manager over `workers` identical nodes.
    pub fn new(workers: usize, node: NodeConfig, policy: PolicyKind, strategy: P) -> Self {
        assert!(workers > 0, "a cluster needs at least one worker");
        // Give each worker its own seed stream so workloads don't correlate.
        let nodes = (0..workers)
            .map(|i| node.with_seed(node.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        Self::with_nodes(nodes, policy, strategy)
    }

    /// A manager over heterogeneous nodes.
    pub fn with_nodes(nodes: Vec<NodeConfig>, policy: PolicyKind, strategy: P) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one worker");
        Manager {
            nodes,
            policy,
            strategy,
            images: shared_dl_defaults(),
        }
    }

    /// Use a custom image registry, shared by every worker in the cluster
    /// (defaults to the process-wide DL catalog).
    pub fn with_images(mut self, images: Arc<ImageRegistry>) -> Self {
        self.images = images;
        self
    }

    /// Place every job by moving it into its worker's plan (no per-job
    /// clone), reporting each `(job, worker)` decision through `on_assign`.
    fn place_jobs(
        &mut self,
        jobs: Vec<JobRequest>,
        mut on_assign: impl FnMut(&JobRequest, usize),
    ) -> Vec<Vec<JobRequest>> {
        let n = self.nodes.len();
        let mut loads = vec![WorkerLoad::default(); n];
        let mut per_worker: Vec<Vec<JobRequest>> = vec![Vec::new(); n];

        for job in jobs {
            let target = self.strategy.place(&job, &loads);
            assert!(target < n, "strategy returned worker {target} of {n}");
            record_assignment(&mut loads[target], &job);
            on_assign(&job, target);
            per_worker[target].push(job);
        }
        per_worker
    }

    /// Flat (CSR-style) variant of [`Manager::place_jobs`] for the dense
    /// headless path: instead of one `Vec` per worker — a million
    /// allocations at a million workers — jobs land in a single arena
    /// sorted by worker, with `offsets[w]..offsets[w + 1]` slicing worker
    /// `w`'s jobs.  The sort is stable, so each worker sees its jobs in
    /// exactly the order the nested layout would give it.
    fn place_jobs_flat(
        &mut self,
        jobs: Vec<JobRequest>,
        mut on_assign: impl FnMut(&JobRequest, usize),
    ) -> (Vec<JobRequest>, Vec<usize>) {
        let n = self.nodes.len();
        let mut loads = vec![WorkerLoad::default(); n];
        let mut tagged: Vec<(usize, JobRequest)> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let target = self.strategy.place(&job, &loads);
            assert!(target < n, "strategy returned worker {target} of {n}");
            record_assignment(&mut loads[target], &job);
            on_assign(&job, target);
            tagged.push((target, job));
        }
        tagged.sort_by_key(|&(target, _)| target);
        let mut offsets = vec![0usize; n + 1];
        for &(target, _) in &tagged {
            offsets[target + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let flat = tagged.into_iter().map(|(_, job)| job).collect();
        (flat, offsets)
    }

    /// Drive one session per worker on the sharded executor: at most
    /// `available_parallelism` OS threads, each recycling one
    /// [`WorkerScratch`] across the worker sessions it processes, all
    /// sharing the manager's image registry.
    fn drive_sessions<R, F>(
        self,
        per_worker: Vec<Vec<JobRequest>>,
        make: F,
    ) -> Vec<SessionResult<R::Output>>
    where
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let policy = self.policy;
        let images = self.images;
        let work: Vec<(usize, NodeConfig, Vec<JobRequest>)> = self
            .nodes
            .iter()
            .copied()
            .zip(per_worker)
            .enumerate()
            .map(|(idx, (node, jobs))| (idx, node, jobs))
            .collect();
        executor::map_sharded(
            work,
            || (WorkerScratch::new(), images.clone()),
            |(scratch, images), (idx, node, jobs)| {
                // The per-worker job lists are already in arrival order, so
                // WorkloadPlan::new's sort is a no-op pass.
                let session = Session::builder()
                    .node(node)
                    .plan(WorkloadPlan::new(jobs))
                    .policy_box(policy.build())
                    .images(images.clone())
                    .recorder(make(idx))
                    .scratch(std::mem::take(scratch))
                    .build();
                let (result, recycled) = session.run_recycling();
                *scratch = recycled;
                result
            },
        )
    }

    /// Place every job, run every worker, and gather the results.
    ///
    /// Convenience wrapper over [`Manager::run_owned`] for callers that
    /// keep the plan; clones it once.
    pub fn run(self, plan: &WorkloadPlan) -> ClusterResult {
        self.run_owned(plan.clone())
    }

    /// Place every job (moving it into its worker's plan), then run one
    /// full-observability session per worker.
    pub fn run_owned(mut self, plan: WorkloadPlan) -> ClusterResult {
        let mut assignments = Vec::with_capacity(plan.jobs.len());
        let per_worker = self.place_jobs(plan.jobs, |job, target| {
            assignments.push((job.label.clone(), target));
        });
        let workers = self
            .drive_sessions(per_worker, |_| FullRecorder::new())
            .into_iter()
            .map(RunResult::from)
            .collect();
        ClusterResult {
            workers,
            assignments,
        }
    }

    /// Run the cluster with a custom per-worker [`Recorder`] (the factory
    /// receives the worker index).
    pub fn run_recorded<R, F>(mut self, plan: WorkloadPlan, make: F) -> ClusterRun<R::Output>
    where
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut placements = Vec::with_capacity(plan.jobs.len());
        let per_worker = self.place_jobs(plan.jobs, |_, target| placements.push(target));
        let workers = self.drive_sessions(per_worker, make);
        ClusterRun {
            workers,
            placements,
        }
    }

    /// Run the cluster headless: label-free completions and makespan only.
    ///
    /// This is the million-worker configuration.  Placed plans run on the
    /// **dense path** ([`flowcon_core::dense`]): flat shard-owned arenas
    /// indexed by the `u32` container ids instead of per-worker
    /// daemon/pool/monitor objects, bit-identical to the object path per
    /// worker (same completions, same event count — pinned by
    /// `source_run_matches_the_equivalent_placed_run` below and the tests
    /// in `flowcon_core::dense`).  No usage/limit traces are collected or
    /// even scheduled, no labels are cloned, and the result holds
    /// O(completions) memory.  Per simulated worker it stays within the
    /// < 10-allocation budget pinned by
    /// `crates/cluster/tests/headless_allocs.rs` and the committed
    /// `cluster/headless/*` bench rows.
    pub fn run_headless(self, plan: WorkloadPlan) -> ClusterRun<CompletionStats> {
        self.run_headless_with(plan, QueueKind::default())
    }

    /// [`Manager::run_headless`] with an explicit event-queue choice
    /// (`repro cluster --queue heap|calendar`).  Both queues dispatch in
    /// identical `(time, FIFO)` order, so the results are bit-identical —
    /// pinned by `crates/cluster/tests/executor_edges.rs`.
    pub fn run_headless_with(
        self,
        plan: WorkloadPlan,
        queue: QueueKind,
    ) -> ClusterRun<CompletionStats> {
        self.place_headless(plan).run(queue)
    }

    /// Place every job for a headless run without simulating anything yet.
    ///
    /// This is `run_headless_with` split at its stage boundary so callers
    /// that care about where the time goes (`repro profile`) can clock
    /// placement and simulation separately; [`PlacedHeadless::run`] is the
    /// second half.
    pub fn place_headless(mut self, plan: WorkloadPlan) -> PlacedHeadless {
        let mut placements = Vec::with_capacity(plan.jobs.len());
        let (flat, offsets) = self.place_jobs_flat(plan.jobs, |_, target| placements.push(target));
        PlacedHeadless {
            nodes: self.nodes,
            policy: self.policy,
            flat,
            offsets,
            placements,
        }
    }

    /// Run the cluster off a streaming [`PlanSource`] with a custom
    /// per-worker [`Recorder`] factory.
    ///
    /// Instead of accepting one materialized plan and placing its jobs,
    /// each executor shard asks the source for the plan of the worker it
    /// is about to simulate (`source.next_plan(worker)`), runs it, and
    /// drops it — at no point do all per-worker plans exist at once, which
    /// is what lets one arrival trace drive a 10k-worker cluster in
    /// O(trace) + O(completions) memory.  The job→worker mapping is owned
    /// by the source (deterministic per `worker_id`), so the result
    /// carries no placement log ([`ClusterRun::placements`] is empty).
    pub fn run_source_recorded<S, R, F>(self, source: &S, make: F) -> ClusterRun<R::Output>
    where
        S: PlanSource + ?Sized,
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let policy = self.policy;
        let images = self.images;
        let work: Vec<(usize, NodeConfig)> = self.nodes.iter().copied().enumerate().collect();
        let workers = executor::map_sharded(
            work,
            || (WorkerScratch::new(), images.clone()),
            |(scratch, images), (idx, node)| {
                let session = Session::builder()
                    .node(node)
                    .plan(source.next_plan(idx))
                    .policy_box(policy.build())
                    .images(images.clone())
                    .recorder(make(idx))
                    .scratch(std::mem::take(scratch))
                    .build();
                let (result, recycled) = session.run_recycling();
                *scratch = recycled;
                result
            },
        );
        ClusterRun {
            workers,
            placements: Vec::new(),
        }
    }

    /// Run the cluster headless off a streaming [`PlanSource`]: label-free
    /// completions only, the 10k-worker trace-replay configuration
    /// (`repro trace --file <trace> --workers 10240`).
    ///
    /// Stays within the ≤ 20 allocs/worker headless budget when the source
    /// produces unlabeled plans (pinned by
    /// `crates/cluster/tests/headless_allocs.rs` and the committed
    /// `cluster/trace_source/*` bench rows).
    pub fn run_source<S: PlanSource + ?Sized>(self, source: &S) -> ClusterRun<CompletionStats> {
        self.run_source_recorded(source, |_| CompletionsOnly::new())
    }

    /// Run the cluster **open-loop** with a custom per-worker [`Recorder`]
    /// factory: every worker pulls its own [`JobStream`] off `source`
    /// (`source.stream_for(worker)`, a pure function of the worker id) and
    /// admits arrivals mid-run until `horizon` trips, then drains.
    ///
    /// The sharded executor drives the workers exactly as in the closed
    /// modes — one recycled [`WorkerScratch`] per shard, one shared image
    /// registry — and because each stream is deterministic per worker, the
    /// run is bit-identical to a sequential loop over
    /// `Session::run_stream` regardless of sharding or interleaving
    /// (pinned by `crates/cluster/tests/open_loop.rs`).
    ///
    /// [`JobStream`]: flowcon_workload::stream::JobStream
    pub fn run_open_loop_recorded<S, R, F>(
        self,
        source: &S,
        horizon: Horizon,
        make: F,
    ) -> OpenLoopRun<R::Output>
    where
        S: StreamSource + ?Sized,
        R: Recorder,
        R::Output: Send,
        F: Fn(usize) -> R + Sync,
    {
        let policy = self.policy;
        let images = self.images;
        let work: Vec<(usize, NodeConfig)> = self.nodes.iter().copied().enumerate().collect();
        let workers = executor::map_sharded(
            work,
            || (WorkerScratch::new(), images.clone()),
            |(scratch, images), (idx, node)| {
                let session = Session::builder()
                    .node(node)
                    .policy_box(policy.build())
                    .images(images.clone())
                    .recorder(make(idx))
                    .scratch(std::mem::take(scratch))
                    .build();
                let (result, recycled) =
                    session.run_stream_recycling(source.stream_for(idx), horizon);
                *scratch = recycled;
                result
            },
        );
        OpenLoopRun { workers }
    }

    /// Run the cluster **open-loop and headless**: label-free completions
    /// plus steady-state [`StreamStats`] per worker — the
    /// `repro stream --workers 1024 --until 3600 --headless`
    /// configuration.
    ///
    /// Stays within the ≤ 20 allocs/worker headless budget when the source
    /// yields unlabeled jobs (pinned by
    /// `crates/cluster/tests/headless_allocs.rs` and the committed
    /// `stream/open_loop/*` bench rows).
    pub fn run_open_loop<S: StreamSource + ?Sized>(
        self,
        source: &S,
        horizon: Horizon,
    ) -> OpenLoopRun<CompletionStats> {
        self.run_open_loop_recorded(source, horizon, |_| CompletionsOnly::new())
    }

    /// The legacy execution path: one OS thread per worker.
    ///
    /// Kept (a) as the reference the sharded executor is bit-compared
    /// against in `tests/cluster_scale.rs`, and (b) for small clusters on
    /// machines where oversubscribing threads is acceptable.  Panics the
    /// spawning thread if any worker simulation panics — and actually
    /// spawns `workers` OS threads, so don't call it with a 1000-node
    /// cluster.
    #[deprecated(
        since = "0.1.0",
        note = "use Manager::run / run_owned (sharded, bit-identical) instead"
    )]
    pub fn run_spawn_per_worker(mut self, plan: &WorkloadPlan) -> ClusterResult {
        let mut assignments = Vec::with_capacity(plan.jobs.len());
        let per_worker = self.place_jobs(plan.jobs.clone(), |job, target| {
            assignments.push((job.label.clone(), target));
        });
        let policy = self.policy;
        let nodes = self.nodes;
        let images = self.images;
        let workers: Vec<RunResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .zip(&nodes)
                .map(|(jobs, &node)| {
                    let images = images.clone();
                    scope.spawn(move || {
                        let plan = WorkloadPlan::new(jobs);
                        let result = Session::builder()
                            .node(node)
                            .plan(plan)
                            .policy_box(policy.build())
                            .images(images)
                            .build()
                            .run();
                        RunResult::from(result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker simulation panicked"))
                .collect()
        });

        ClusterResult {
            workers,
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{RoundRobin, Spread};
    use flowcon_core::config::FlowConConfig;

    fn node() -> NodeConfig {
        NodeConfig::default()
    }

    #[test]
    fn all_jobs_complete_across_two_workers() {
        let plan = WorkloadPlan::random_n(10, 7);
        let manager = Manager::new(2, node(), PolicyKind::Baseline, RoundRobin::default());
        let result = manager.run(&plan);
        assert_eq!(result.completed_jobs(), 10);
        assert_eq!(result.assignments.len(), 10);
        // Round-robin: 5 jobs each.
        let w0 = result.assignments.iter().filter(|(_, w)| *w == 0).count();
        assert_eq!(w0, 5);
    }

    #[test]
    fn two_workers_beat_one_on_makespan() {
        let plan = WorkloadPlan::random_n(10, 7);
        let one = Manager::new(1, node(), PolicyKind::Baseline, Spread).run(&plan);
        let two = Manager::new(2, node(), PolicyKind::Baseline, Spread).run(&plan);
        assert!(
            two.makespan_secs() < one.makespan_secs(),
            "2 workers {:.0}s vs 1 worker {:.0}s",
            two.makespan_secs(),
            one.makespan_secs()
        );
    }

    #[test]
    fn flowcon_policy_runs_on_every_worker() {
        let plan = WorkloadPlan::random_n(8, 9);
        let manager = Manager::new(
            2,
            node(),
            PolicyKind::FlowCon(FlowConConfig::default()),
            Spread,
        );
        let result = manager.run(&plan);
        assert_eq!(result.completed_jobs(), 8);
        for w in &result.workers {
            assert_eq!(w.summary.policy, "FlowCon-5%-20");
        }
    }

    #[test]
    fn completion_lookup_spans_workers() {
        let plan = WorkloadPlan::random_n(4, 3);
        let result =
            Manager::new(2, node(), PolicyKind::Baseline, RoundRobin::default()).run(&plan);
        for job in &plan.jobs {
            assert!(
                result.completion_of(&job.label).is_some(),
                "missing {}",
                job.label
            );
        }
        assert!(result.completion_of("nonexistent").is_none());
    }

    #[test]
    fn headless_run_matches_full_run_under_na() {
        // The NA baseline ignores measurements, so removing the sampling
        // events cannot change the fluid dynamics: headless and full agree
        // to the engine's 1 µs completion-check margin.  (Under FlowCon the
        // two are only statistically equivalent — fewer integration steps
        // draw a different eval-noise stream.)
        let plan = WorkloadPlan::random_n(12, 5);
        let build = || Manager::new(3, node(), PolicyKind::Baseline, RoundRobin::default());
        let full = build().run(&plan);
        let headless = build().run_headless(plan.clone());
        assert_eq!(headless.completed_jobs(), 12);
        assert_eq!(headless.placements.len(), 12);
        // Placement is identical (labels dropped, indices kept).
        let full_targets: Vec<usize> = full.assignments.iter().map(|&(_, w)| w).collect();
        assert_eq!(headless.placements, full_targets);
        let diff = (headless.makespan_secs() - full.makespan_secs()).abs();
        assert!(diff < 1e-3, "makespan diverged by {diff}s");
        // Headless schedules no sampling events at all.
        let full_events: u64 = full.workers.iter().map(|w| w.events_processed).sum();
        assert!(headless.events_processed() < full_events);
        assert!(headless.mean_completion_secs().unwrap() > 0.0);
    }

    #[test]
    fn headless_flowcon_conserves_jobs_at_plausible_makespan() {
        let plan = WorkloadPlan::random_n(12, 5);
        let build = |kind: PolicyKind| Manager::new(3, node(), kind, RoundRobin::default());
        let fc = PolicyKind::FlowCon(FlowConConfig::default());
        let full = build(fc).run(&plan);
        let headless = build(fc).run_headless(plan);
        assert_eq!(headless.completed_jobs(), 12);
        // Different eval-noise stream, same physics scale: within a few %.
        let rel = (headless.makespan_secs() - full.makespan_secs()).abs() / full.makespan_secs();
        assert!(rel < 0.05, "headless makespan off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn recorded_run_passes_worker_indices_to_the_factory() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let plan = WorkloadPlan::random_n(6, 2);
        let seen = AtomicU64::new(0);
        let run = Manager::new(3, node(), PolicyKind::Baseline, RoundRobin::default())
            .run_recorded(plan, |idx| {
                seen.fetch_or(1 << idx, Ordering::Relaxed);
                CompletionsOnly::new()
            });
        assert_eq!(run.workers.len(), 3);
        assert_eq!(seen.load(Ordering::Relaxed), 0b111, "every index seen");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Manager::new(0, node(), PolicyKind::Baseline, Spread);
    }

    #[test]
    fn source_run_matches_the_equivalent_placed_run() {
        use flowcon_workload::{BoundTrace, TraceSource};
        // A trace source slicing round-robin is exactly RoundRobin
        // placement of the same arrival-ordered plan, so the two paths
        // must complete the same jobs at the same makespan.
        let plan = WorkloadPlan::random_n(12, 5);
        let source = TraceSource::new(BoundTrace::from_plan(plan.clone()), 3);
        let build = || Manager::new(3, node(), PolicyKind::Baseline, RoundRobin::default());
        let placed = build().run_headless(plan);
        let streamed = build().run_source(&source);
        assert_eq!(streamed.completed_jobs(), 12);
        assert!(streamed.placements.is_empty(), "the source owns placement");
        for (a, b) in placed.workers.iter().zip(&streamed.workers) {
            assert_eq!(a.output, b.output, "per-worker stats diverged");
            assert_eq!(a.events_processed, b.events_processed);
        }
    }

    #[test]
    fn open_loop_cluster_drives_every_worker_to_the_horizon() {
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), 7).unlabeled();
        let horizon = Horizon::jobs(2);
        let run = Manager::new(4, node(), PolicyKind::Baseline, RoundRobin::default())
            .run_open_loop(&source, horizon);
        assert_eq!(run.workers.len(), 4);
        assert_eq!(run.submitted_jobs(), 8);
        assert_eq!(run.completed_jobs(), 8, "every admitted job drains");
        assert!(run.makespan_secs() > 0.0);
        let totals = run.stream_totals();
        assert_eq!(totals.submitted, 8);
        assert!(totals.utilization() > 0.0 && totals.utilization() <= 1.0);
        assert!(totals.mean_queue_depth() > 0.0);
    }

    #[test]
    fn open_loop_cluster_accepts_cyclic_trace_sources() {
        use flowcon_workload::TraceStreamSource;
        // A 6-job plan cycled across 3 workers: each worker replays its
        // 2-row slice repeatedly until the 5-job-per-worker horizon.
        let plan = WorkloadPlan::random_n(6, 11);
        let source =
            TraceStreamSource::new(flowcon_workload::BoundTrace::from_plan(plan).unlabeled(), 3)
                .cyclic();
        let run = Manager::new(3, node(), PolicyKind::Baseline, RoundRobin::default())
            .run_open_loop(&source, Horizon::jobs(5));
        assert_eq!(run.submitted_jobs(), 15, "cyclic replay is unbounded");
        assert_eq!(run.completed_jobs(), 15);
    }

    #[test]
    fn synthetic_source_drives_every_worker() {
        use flowcon_workload::{ArrivalProcess, SyntheticSource};
        let source = SyntheticSource::new(ArrivalProcess::poisson(0.05), 2, 7).unlabeled();
        let run = Manager::new(4, node(), PolicyKind::Baseline, RoundRobin::default())
            .run_source(&source);
        assert_eq!(run.workers.len(), 4);
        assert_eq!(run.completed_jobs(), 8);
        assert!(run.makespan_secs() > 0.0);
    }
}
