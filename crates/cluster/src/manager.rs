//! The cluster manager.
//!
//! Accepts a workload plan, places each job on a worker (in arrival order,
//! using a [`PlacementStrategy`]), then drives every worker's simulation on
//! the sharded [`crate::executor`] pool — at most
//! `available_parallelism` OS threads regardless of cluster size, with one
//! recycled [`WorkerScratch`] per shard.  Workers are independent once jobs
//! are assigned, exactly as in the paper's architecture where managers
//! never participate in worker-side reconfiguration.

use flowcon_core::config::NodeConfig;
use flowcon_core::worker::{RunResult, WorkerScratch, WorkerSim};
use flowcon_dl::workload::{JobRequest, WorkloadPlan};

use crate::executor;
use crate::placement::{record_assignment, PlacementStrategy, WorkerLoad};
use crate::policy_kind::PolicyKind;

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-worker results, indexed by worker.
    pub workers: Vec<RunResult>,
    /// Which worker each job went to: `(job label, worker index)`.
    pub assignments: Vec<(String, usize)>,
}

impl ClusterResult {
    /// Cluster makespan: the latest completion over all workers.
    pub fn makespan_secs(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.summary.makespan_secs())
            .fold(0.0, f64::max)
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.summary.completions.len())
            .sum()
    }

    /// Completion time of a job by label, searching all workers.
    pub fn completion_of(&self, label: &str) -> Option<f64> {
        self.workers
            .iter()
            .find_map(|w| w.summary.completion_of(label))
    }
}

/// The manager: placement + per-worker node configs + per-worker policy.
pub struct Manager<P: PlacementStrategy> {
    nodes: Vec<NodeConfig>,
    policy: PolicyKind,
    strategy: P,
}

impl<P: PlacementStrategy> Manager<P> {
    /// A manager over `workers` identical nodes.
    pub fn new(workers: usize, node: NodeConfig, policy: PolicyKind, strategy: P) -> Self {
        assert!(workers > 0, "a cluster needs at least one worker");
        // Give each worker its own seed stream so workloads don't correlate.
        let nodes = (0..workers)
            .map(|i| node.with_seed(node.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        Manager {
            nodes,
            policy,
            strategy,
        }
    }

    /// A manager over heterogeneous nodes.
    pub fn with_nodes(nodes: Vec<NodeConfig>, policy: PolicyKind, strategy: P) -> Self {
        assert!(!nodes.is_empty());
        Manager {
            nodes,
            policy,
            strategy,
        }
    }

    /// Place every job by moving it into its worker's plan (no per-job
    /// clone), returning the per-worker job lists and the assignment log.
    fn place_jobs(
        &mut self,
        jobs: Vec<JobRequest>,
    ) -> (Vec<Vec<JobRequest>>, Vec<(String, usize)>) {
        let n = self.nodes.len();
        let mut loads = vec![WorkerLoad::default(); n];
        let mut per_worker: Vec<Vec<JobRequest>> = vec![Vec::new(); n];
        let mut assignments = Vec::with_capacity(jobs.len());

        for job in jobs {
            let target = self.strategy.place(&job, &loads);
            assert!(target < n, "strategy returned worker {target} of {n}");
            record_assignment(&mut loads[target], &job);
            assignments.push((job.label.clone(), target));
            per_worker[target].push(job);
        }
        (per_worker, assignments)
    }

    /// Place every job, run every worker, and gather the results.
    ///
    /// Convenience wrapper over [`Manager::run_owned`] for callers that
    /// keep the plan; clones it once.
    pub fn run(self, plan: &WorkloadPlan) -> ClusterResult {
        self.run_owned(plan.clone())
    }

    /// Place every job (moving it into its worker's plan), then drive all
    /// worker simulations on the sharded executor: at most
    /// `available_parallelism` OS threads, each recycling one
    /// [`WorkerScratch`] across the worker sims it processes.
    pub fn run_owned(mut self, plan: WorkloadPlan) -> ClusterResult {
        let (per_worker, assignments) = self.place_jobs(plan.jobs);
        let policy = self.policy;
        let nodes = self.nodes;
        let work: Vec<(NodeConfig, Vec<JobRequest>)> =
            nodes.iter().copied().zip(per_worker).collect();
        let workers: Vec<RunResult> =
            executor::map_sharded(work, WorkerScratch::new, |scratch, (node, jobs)| {
                // The per-worker job lists are already in arrival order, so
                // WorkloadPlan::new's sort is a no-op pass.
                let plan = WorkloadPlan::new(jobs);
                let sim =
                    WorkerSim::with_scratch(node, plan, policy.build(), std::mem::take(scratch));
                let (result, recycled) = sim.run_recycling();
                *scratch = recycled;
                result
            });

        ClusterResult {
            workers,
            assignments,
        }
    }

    /// The legacy execution path: one OS thread per worker.
    ///
    /// Kept (a) as the reference the sharded executor is bit-compared
    /// against in `tests/cluster_scale.rs`, and (b) for small clusters on
    /// machines where oversubscribing threads is acceptable.  Panics the
    /// spawning thread if any worker simulation panics — and actually
    /// spawns `workers` OS threads, so don't call it with a 1000-node
    /// cluster.
    pub fn run_spawn_per_worker(mut self, plan: &WorkloadPlan) -> ClusterResult {
        let (per_worker, assignments) = self.place_jobs(plan.jobs.clone());
        let policy = self.policy;
        let nodes = self.nodes;
        let workers: Vec<RunResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .zip(&nodes)
                .map(|(jobs, &node)| {
                    scope.spawn(move || {
                        let plan = WorkloadPlan::new(jobs);
                        WorkerSim::new(node, plan, policy.build()).run()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker simulation panicked"))
                .collect()
        });

        ClusterResult {
            workers,
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{RoundRobin, Spread};
    use flowcon_core::config::FlowConConfig;

    fn node() -> NodeConfig {
        NodeConfig::default()
    }

    #[test]
    fn all_jobs_complete_across_two_workers() {
        let plan = WorkloadPlan::random_n(10, 7);
        let manager = Manager::new(2, node(), PolicyKind::Baseline, RoundRobin::default());
        let result = manager.run(&plan);
        assert_eq!(result.completed_jobs(), 10);
        assert_eq!(result.assignments.len(), 10);
        // Round-robin: 5 jobs each.
        let w0 = result.assignments.iter().filter(|(_, w)| *w == 0).count();
        assert_eq!(w0, 5);
    }

    #[test]
    fn two_workers_beat_one_on_makespan() {
        let plan = WorkloadPlan::random_n(10, 7);
        let one = Manager::new(1, node(), PolicyKind::Baseline, Spread).run(&plan);
        let two = Manager::new(2, node(), PolicyKind::Baseline, Spread).run(&plan);
        assert!(
            two.makespan_secs() < one.makespan_secs(),
            "2 workers {:.0}s vs 1 worker {:.0}s",
            two.makespan_secs(),
            one.makespan_secs()
        );
    }

    #[test]
    fn flowcon_policy_runs_on_every_worker() {
        let plan = WorkloadPlan::random_n(8, 9);
        let manager = Manager::new(
            2,
            node(),
            PolicyKind::FlowCon(FlowConConfig::default()),
            Spread,
        );
        let result = manager.run(&plan);
        assert_eq!(result.completed_jobs(), 8);
        for w in &result.workers {
            assert_eq!(w.summary.policy, "FlowCon-5%-20");
        }
    }

    #[test]
    fn completion_lookup_spans_workers() {
        let plan = WorkloadPlan::random_n(4, 3);
        let result =
            Manager::new(2, node(), PolicyKind::Baseline, RoundRobin::default()).run(&plan);
        for job in &plan.jobs {
            assert!(
                result.completion_of(&job.label).is_some(),
                "missing {}",
                job.label
            );
        }
        assert!(result.completion_of("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Manager::new(0, node(), PolicyKind::Baseline, Spread);
    }
}
