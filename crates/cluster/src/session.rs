//! The cluster front door: one builder covering every run mode.
//!
//! [`ClusterSession`] replaces the `Manager::run_*` zoo with a single
//! fluent surface.  Configure the cluster (`nodes` / `node_configs`,
//! `policy`, `placement`, `images`), pick exactly one workload
//! (`plan` / `source` / `stream`), optionally switch the mode
//! (`recorder` for custom observability, `scheduler` for the online
//! cluster scheduler), then `build().run()`.
//!
//! # Migration from the removed `Manager`
//!
//! The `Manager` façade shipped one release with its entry points as
//! `#[deprecated]` shims over this builder (bit-compared against it
//! while they lived) and has been **removed**.  Every removed entry
//! point maps onto the builder; `mgr` below stands for the
//! configuration calls
//! `ClusterSession::builder().nodes(w, node).policy(kind).placement(strategy)`:
//!
//! | Removed | New |
//! |---|---|
//! | `Manager::run(&plan)` / `run_owned(plan)` | `mgr.plan(plan).recorder(\|_\| FullRecorder::new()).build().run()` (labels: zip the plan's labels with `placements`) |
//! | `Manager::run_recorded(plan, make)` | `mgr.plan(plan).recorder(make).build().run()` |
//! | `Manager::run_headless(plan)` | `mgr.plan(plan).build().run()` (headless is the default mode) |
//! | `Manager::run_headless_with(plan, queue)` | `mgr.plan(plan).queue(queue).build().run()` |
//! | `Manager::place_headless(plan)` | `mgr.plan(plan).build().place()` |
//! | `Manager::run_source(&src)` | `mgr.source(&src).build().run()` |
//! | `Manager::run_source_recorded(&src, make)` | `mgr.source(&src).recorder(make).build().run()` |
//! | `Manager::run_open_loop(&src, h)` | `mgr.stream(&src, h).build().run()` |
//! | `Manager::run_open_loop_recorded(&src, h, make)` | `mgr.stream(&src, h).recorder(make).build().run()` |
//! | `Manager::run_spawn_per_worker(&plan)` | removed — test-only reference loop in `tests/cluster_scale.rs` |
//!
//! The online scheduler ([`crate::sched`]) has no `Manager` ancestor; it
//! is reached the same way: `mgr.plan(plan).scheduler(SchedPolicyKind::Fifo).build().run()`.

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::sync::Arc;

use flowcon_container::image::shared_dl_defaults;
use flowcon_container::ImageRegistry;
use flowcon_core::config::NodeConfig;
use flowcon_core::dense::QueueKind;
use flowcon_core::recorder::{CompletionsOnly, Recorder};
use flowcon_core::session::{Session, SessionResult, StreamResult};
use flowcon_core::worker::WorkerScratch;
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_metrics::sojourn::SojournStats;
use flowcon_metrics::stream::StreamStats;
use flowcon_metrics::summary::{makespan_over, CompletionStats};
use flowcon_sim::time::SimDuration;
use flowcon_sim::trace::{NoopTracer, Tracer};
use flowcon_workload::source::PlanSource;
use flowcon_workload::stream::{Horizon, JobStream, StreamSource, StreamedJob};

use crate::executor;
use crate::manager::PlacedHeadless;
use crate::placement::{record_assignment, PlacementStrategy, RoundRobin, WorkerLoad};
use crate::policy_kind::PolicyKind;
use crate::sched::{self, ClusterPolicy, SchedConfig, SchedOutcome, SchedPolicyKind};

// ---------------------------------------------------------------------------
// Dynamic stream sources
// ---------------------------------------------------------------------------

/// A type-erased [`JobStream`], produced by [`DynStreamSource`].
///
/// [`StreamSource::Stream`] is a generic associated type, so the trait is
/// not object safe; this newtype is the boxed bridge that lets the builder
/// hold *any* stream source behind one reference.
pub struct BoxedStream<'a>(Box<dyn JobStream + 'a>);

impl<'a> BoxedStream<'a> {
    /// Box a concrete stream.
    pub fn new(stream: impl JobStream + 'a) -> Self {
        BoxedStream(Box::new(stream))
    }
}

impl JobStream for BoxedStream<'_> {
    fn next_job(&mut self) -> Option<StreamedJob> {
        self.0.next_job()
    }
}

/// Object-safe face of [`StreamSource`]: what
/// [`ClusterSessionBuilder::stream`] actually stores.
///
/// Blanket-implemented for every [`StreamSource`], so passing `&source`
/// of any concrete source type coerces directly; implement it manually
/// only for sources that cannot implement the generic trait.
pub trait DynStreamSource: Sync {
    /// The boxed stream for worker `worker_id` — same purity contract as
    /// [`StreamSource::stream_for`].
    fn dyn_stream_for(&self, worker_id: usize) -> BoxedStream<'_>;
}

impl<S: StreamSource> DynStreamSource for S {
    fn dyn_stream_for(&self, worker_id: usize) -> BoxedStream<'_> {
        BoxedStream::new(self.stream_for(worker_id))
    }
}

// ---------------------------------------------------------------------------
// Builder state
// ---------------------------------------------------------------------------

/// The cluster's node set, materialized lazily at [`ClusterSessionBuilder::build`].
#[derive(Debug)]
enum NodeSet {
    /// No `.nodes()` / `.node_configs()` call yet.
    Unset,
    /// `workers` copies of one template, each re-seeded so workloads
    /// don't correlate (the same stride `Manager::new` used).
    Uniform { workers: usize, node: NodeConfig },
    /// Heterogeneous nodes, used verbatim.
    Explicit(Vec<NodeConfig>),
}

impl NodeSet {
    fn materialize(self) -> Vec<NodeConfig> {
        let nodes = match self {
            NodeSet::Unset => Vec::new(),
            NodeSet::Uniform { workers, node } => (0..workers)
                .map(|i| node.with_seed(node.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
                .collect(),
            NodeSet::Explicit(nodes) => nodes,
        };
        assert!(!nodes.is_empty(), "a cluster needs at least one worker");
        nodes
    }
}

/// Which workload drives the run — exactly one of the three shapes.
enum WorkloadSpec<'w> {
    /// A materialized plan the session places job by job.
    Plan(WorkloadPlan),
    /// A streaming per-worker plan source (placement owned by the source).
    Source(&'w dyn PlanSource),
    /// An open-loop job stream admitted until the horizon trips.
    Stream(&'w dyn DynStreamSource, Horizon),
}

/// Default mode: label-free completions only, O(completions) memory —
/// the million-worker configuration.  Placed plans run on the dense path
/// ([`flowcon_core::dense`]); pick the event queue with
/// [`ClusterSessionBuilder::queue`].
#[derive(Debug, Clone, Copy)]
pub struct Headless {
    queue: QueueKind,
}

/// Mode selected by [`ClusterSessionBuilder::recorder`]: every worker
/// session records through `make(worker_index)`.
pub struct Recorded<R, F> {
    make: F,
    _out: PhantomData<fn() -> R>,
}

/// Mode selected by [`ClusterSessionBuilder::scheduler`]: the online
/// cluster scheduler ([`crate::sched`]) consumes the workload as one
/// shared arrival stream and makes live queueing/placement/preemption
/// decisions at every quantum barrier.
///
/// The tracer defaults to [`NoopTracer`] (compiled away); switch it with
/// [`ClusterSessionBuilder::tracer`] to capture a structured timeline of
/// the run.
pub struct Sched<T: Tracer = NoopTracer> {
    kind: SchedPolicyKind,
    custom: Option<Box<dyn ClusterPolicy>>,
    config: SchedConfig,
    tracer: T,
}

/// Fluent configuration for one cluster run; entry point
/// [`ClusterSession::builder`].
///
/// The type parameter tracks the selected mode ([`Headless`] by default,
/// [`Recorded`] after `.recorder(..)`, [`Sched`] after `.scheduler(..)`),
/// so each mode's `run()` can return its natural result type.
pub struct ClusterSessionBuilder<'w, M = Headless> {
    nodes: NodeSet,
    policy: PolicyKind,
    strategy: Box<dyn PlacementStrategy>,
    images: Arc<ImageRegistry>,
    workload: WorkloadSpec<'w>,
    mode: M,
}

impl<'w> Default for ClusterSessionBuilder<'w, Headless> {
    fn default() -> Self {
        ClusterSessionBuilder {
            nodes: NodeSet::Unset,
            policy: PolicyKind::Baseline,
            strategy: Box::new(RoundRobin::default()),
            images: shared_dl_defaults(),
            workload: WorkloadSpec::Plan(WorkloadPlan::new(Vec::new())),
            mode: Headless {
                queue: QueueKind::default(),
            },
        }
    }
}

impl<'w, M> ClusterSessionBuilder<'w, M> {
    /// `workers` identical nodes, each re-seeded from the template so
    /// per-worker randomness doesn't correlate.
    pub fn nodes(mut self, workers: usize, node: NodeConfig) -> Self {
        self.nodes = NodeSet::Uniform { workers, node };
        self
    }

    /// Heterogeneous nodes, used verbatim (no re-seeding).
    pub fn node_configs(mut self, nodes: Vec<NodeConfig>) -> Self {
        self.nodes = NodeSet::Explicit(nodes);
        self
    }

    /// The worker-side resource policy every node builds locally
    /// (defaults to [`PolicyKind::Baseline`]).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The placement strategy for materialized plans (defaults to
    /// [`RoundRobin`]; ignored by `source`/`stream` workloads, where the
    /// source owns the job→worker mapping, and by the scheduler mode,
    /// where the [`crate::sched::ClusterPolicy`] decides placement live).
    pub fn placement(mut self, strategy: impl PlacementStrategy + 'static) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// A custom image registry shared by every worker (defaults to the
    /// process-wide DL catalog).
    pub fn images(mut self, images: Arc<ImageRegistry>) -> Self {
        self.images = images;
        self
    }

    /// Drive the cluster from one materialized [`WorkloadPlan`], placed
    /// job by job with the configured strategy.
    pub fn plan(mut self, plan: WorkloadPlan) -> Self {
        self.workload = WorkloadSpec::Plan(plan);
        self
    }

    /// Drive the cluster from a streaming [`PlanSource`]: each executor
    /// shard pulls `source.next_plan(worker)` for the worker it is about
    /// to simulate, so no per-worker plans ever exist at once.
    pub fn source(mut self, source: &'w dyn PlanSource) -> Self {
        self.workload = WorkloadSpec::Source(source);
        self
    }

    /// Drive the cluster **open-loop**: every worker pulls its own job
    /// stream off `source` and admits arrivals mid-run until `horizon`
    /// trips, then drains.
    pub fn stream(mut self, source: &'w dyn DynStreamSource, horizon: Horizon) -> Self {
        self.workload = WorkloadSpec::Stream(source, horizon);
        self
    }

    /// Switch to the [`Recorded`] mode: worker `w` records through
    /// `make(w)` and the run returns the recorders' outputs.
    pub fn recorder<R, F>(self, make: F) -> ClusterSessionBuilder<'w, Recorded<R, F>>
    where
        R: Recorder,
        F: Fn(usize) -> R + Sync,
    {
        ClusterSessionBuilder {
            nodes: self.nodes,
            policy: self.policy,
            strategy: self.strategy,
            images: self.images,
            workload: self.workload,
            mode: Recorded {
                make,
                _out: PhantomData,
            },
        }
    }

    /// Switch to the [`Sched`] mode: run the online cluster scheduler
    /// with the given discipline over the workload's arrival stream.
    pub fn scheduler(self, kind: SchedPolicyKind) -> ClusterSessionBuilder<'w, Sched> {
        ClusterSessionBuilder {
            nodes: self.nodes,
            policy: self.policy,
            strategy: self.strategy,
            images: self.images,
            workload: self.workload,
            mode: Sched {
                kind,
                custom: None,
                config: SchedConfig::default(),
                tracer: NoopTracer,
            },
        }
    }

    /// Materialize the node set and freeze the configuration.
    ///
    /// Panics if no nodes were configured (`a cluster needs at least one
    /// worker`), matching `Manager::new`.
    pub fn build(self) -> ClusterSession<'w, M> {
        ClusterSession {
            nodes: self.nodes.materialize(),
            policy: self.policy,
            strategy: self.strategy,
            images: self.images,
            workload: self.workload,
            mode: self.mode,
        }
    }
}

impl<'w> ClusterSessionBuilder<'w, Headless> {
    /// The event-queue implementation for the dense headless path (both
    /// dispatch in identical `(time, FIFO)` order, so results are
    /// bit-identical; only applies to placed plans).
    pub fn queue(mut self, queue: QueueKind) -> Self {
        self.mode.queue = queue;
        self
    }
}

impl<'w, T: Tracer> ClusterSessionBuilder<'w, Sched<T>> {
    /// Barrier spacing of the scheduling engine (default 10 s).
    pub fn quantum(mut self, quantum: SimDuration) -> Self {
        self.mode.config.quantum = quantum;
        self
    }

    /// Concurrent job slots per node (default 2).
    pub fn slots_per_node(mut self, slots: usize) -> Self {
        self.mode.config.slots_per_node = slots;
        self
    }

    /// Advance nodes on the caller's thread instead of the sharded
    /// executor (bit-identical either way; for determinism tests).
    pub fn sequential(mut self, sequential: bool) -> Self {
        self.mode.config.sequential = sequential;
        self
    }

    /// Replace the built-in discipline selected by
    /// [`scheduler`](ClusterSessionBuilder::scheduler) with a custom
    /// [`ClusterPolicy`] implementation.
    pub fn discipline(mut self, policy: Box<dyn ClusterPolicy>) -> Self {
        self.mode.custom = Some(policy);
        self
    }

    /// Trace the run through `tracer` — e.g. a
    /// [`FlightRecorder`](flowcon_sim::trace::FlightRecorder) — instead of
    /// the default no-op.  Per-node shards are forked off this tracer and
    /// drained back in node order at every barrier, so the merged timeline
    /// is identical whether nodes advance sharded or
    /// [`sequential`](ClusterSessionBuilder::sequential).  Retrieve the
    /// tracer with [`ClusterSession::run_traced`].
    pub fn tracer<T2: Tracer>(self, tracer: T2) -> ClusterSessionBuilder<'w, Sched<T2>> {
        ClusterSessionBuilder {
            nodes: self.nodes,
            policy: self.policy,
            strategy: self.strategy,
            images: self.images,
            workload: self.workload,
            mode: Sched {
                kind: self.mode.kind,
                custom: self.mode.custom,
                config: self.mode.config,
                tracer,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// The session and its outcomes
// ---------------------------------------------------------------------------

/// A fully configured cluster run, ready to execute; see
/// [`ClusterSessionBuilder`] for the configuration surface and the module
/// docs for the `Manager` migration table.
pub struct ClusterSession<'w, M = Headless> {
    nodes: Vec<NodeConfig>,
    policy: PolicyKind,
    strategy: Box<dyn PlacementStrategy>,
    images: Arc<ImageRegistry>,
    workload: WorkloadSpec<'w>,
    mode: M,
}

impl<'w> ClusterSession<'w, Headless> {
    /// Start configuring a cluster run.
    pub fn builder() -> ClusterSessionBuilder<'w, Headless> {
        ClusterSessionBuilder::default()
    }
}

/// What a [`Headless`] or [`Recorded`] cluster run produces: per-worker
/// recorder outputs, the placement log (plan workloads only), and
/// per-worker steady-state stats (stream workloads only).
#[derive(Debug)]
pub struct ClusterOutcome<T> {
    /// Per-worker session results, indexed by worker.
    pub workers: Vec<SessionResult<T>>,
    /// Worker index of each job in plan (arrival) order; empty for
    /// `source`/`stream` workloads, where the source owns placement.
    pub placements: Vec<usize>,
    /// Per-worker [`StreamStats`], indexed by worker; empty for closed
    /// (`plan`/`source`) workloads.
    pub streams: Vec<StreamStats>,
    /// Per-worker SLO tails (sojourn/queue-wait quantile sketches),
    /// indexed by worker, parallel to `streams`; empty for closed
    /// workloads.
    pub tails: Vec<SojournStats>,
}

impl<T> ClusterOutcome<T> {
    /// Total simulated events across all workers.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.events_processed).sum()
    }

    /// Cluster-wide steady-state totals (open-loop runs): per-worker
    /// [`StreamStats`] merged.
    pub fn stream_totals(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for s in &self.streams {
            total.merge(s);
        }
        total
    }

    /// Jobs admitted across the cluster before the horizon (open-loop
    /// runs; 0 for closed workloads, which have no admission control).
    pub fn submitted_jobs(&self) -> usize {
        self.streams.iter().map(|s| s.submitted as usize).sum()
    }

    /// Cluster-wide SLO tails (open-loop runs): per-worker
    /// [`SojournStats`] folded in worker-index order.
    ///
    /// [`executor::map_sharded`] returns results in input order, so this
    /// fold is bit-identical to recording every exit into one aggregate
    /// sequentially, however the run was sharded (pinned in
    /// `crates/cluster/tests/`).
    pub fn tail_totals(&self) -> SojournStats {
        let mut total = SojournStats::new();
        for t in &self.tails {
            total.merge(t);
        }
        total
    }
}

impl ClusterOutcome<CompletionStats> {
    /// Cluster makespan (canonical [`makespan_over`] fold).
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.workers.iter().map(|w| w.output.makespan_secs()))
    }

    /// Total number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.output.len()).sum()
    }

    /// Mean per-job completion time over the whole cluster.
    pub fn mean_completion_secs(&self) -> Option<f64> {
        let n = self.completed_jobs();
        if n == 0 {
            return None;
        }
        let sum: f64 = self
            .workers
            .iter()
            .flat_map(|w| w.output.completions.iter())
            .map(|c| c.completion_secs())
            .sum();
        Some(sum / n as f64)
    }
}

impl<'w> ClusterSession<'w, Headless> {
    /// Run headless: label-free completions and makespan only.
    ///
    /// Placed plans run on the dense path within the < 10-allocation
    /// per-worker budget pinned by `crates/cluster/tests/headless_allocs.rs`;
    /// `source`/`stream` workloads run object-path sessions with
    /// [`CompletionsOnly`] recorders.
    pub fn run(self) -> ClusterOutcome<CompletionStats> {
        match self.workload {
            WorkloadSpec::Plan(_) => {
                let queue = self.mode.queue;
                let run = self.place().run(queue);
                ClusterOutcome {
                    workers: run.workers,
                    placements: run.placements,
                    streams: Vec::new(),
                    tails: Vec::new(),
                }
            }
            WorkloadSpec::Source(source) => ClusterOutcome {
                workers: drive_source(&self.nodes, self.policy, &self.images, source, &|_| {
                    CompletionsOnly::new()
                }),
                placements: Vec::new(),
                streams: Vec::new(),
                tails: Vec::new(),
            },
            WorkloadSpec::Stream(source, horizon) => split_stream(drive_stream(
                &self.nodes,
                self.policy,
                &self.images,
                source,
                horizon,
                &|_| CompletionsOnly::new(),
            )),
        }
    }

    /// Place the plan's jobs without simulating anything yet — the
    /// headless run split at its stage boundary so `repro profile` can
    /// clock placement and simulation separately.
    ///
    /// Panics unless the workload is a materialized plan.
    pub fn place(mut self) -> PlacedHeadless {
        let WorkloadSpec::Plan(plan) = self.workload else {
            panic!("place() requires a materialized plan workload");
        };
        let mut placements = Vec::with_capacity(plan.jobs.len());
        let (flat, offsets) = place_flat(
            &mut *self.strategy,
            self.nodes.len(),
            plan.jobs,
            |_, target| placements.push(target),
        );
        PlacedHeadless {
            nodes: self.nodes,
            policy: self.policy,
            flat,
            offsets,
            placements,
        }
    }
}

impl<'w, R, F> ClusterSession<'w, Recorded<R, F>>
where
    R: Recorder,
    R::Output: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Run with the custom per-worker [`Recorder`] factory.
    pub fn run(mut self) -> ClusterOutcome<R::Output> {
        let make = &self.mode.make;
        match self.workload {
            WorkloadSpec::Plan(plan) => {
                let mut placements = Vec::with_capacity(plan.jobs.len());
                let per_worker = place_nested(
                    &mut *self.strategy,
                    self.nodes.len(),
                    plan.jobs,
                    |_, target| placements.push(target),
                );
                ClusterOutcome {
                    workers: drive_plan(&self.nodes, self.policy, &self.images, per_worker, make),
                    placements,
                    streams: Vec::new(),
                    tails: Vec::new(),
                }
            }
            WorkloadSpec::Source(source) => ClusterOutcome {
                workers: drive_source(&self.nodes, self.policy, &self.images, source, make),
                placements: Vec::new(),
                streams: Vec::new(),
                tails: Vec::new(),
            },
            WorkloadSpec::Stream(source, horizon) => split_stream(drive_stream(
                &self.nodes,
                self.policy,
                &self.images,
                source,
                horizon,
                make,
            )),
        }
    }
}

impl<'w, T: Tracer + Send> ClusterSession<'w, Sched<T>> {
    /// Run the online scheduler: the workload becomes one cluster-wide
    /// arrival stream, and the configured discipline makes live
    /// queueing/placement/preemption decisions at every quantum barrier.
    ///
    /// A `plan` workload contributes its jobs directly; a `source`
    /// contributes `next_plan(0)` (the scheduler owns placement, so only
    /// one shared plan is meaningful); a `stream` contributes worker 0's
    /// stream pulled up to the horizon, which must be bounded.
    pub fn run(self) -> SchedOutcome {
        self.run_traced().0
    }

    /// Like [`run`](ClusterSession::run), but also hand back the tracer
    /// configured with [`ClusterSessionBuilder::tracer`], now holding the
    /// merged timeline of the whole run.
    pub fn run_traced(self) -> (SchedOutcome, T) {
        let ClusterSession {
            nodes,
            policy,
            workload,
            mode,
            ..
        } = self;
        let mut arrivals: Vec<sched::ArrivalSpec> = match workload {
            WorkloadSpec::Plan(plan) => plan.jobs.iter().map(arrival_of).collect(),
            WorkloadSpec::Source(source) => {
                source.next_plan(0).jobs.iter().map(arrival_of).collect()
            }
            WorkloadSpec::Stream(source, horizon) => {
                assert!(
                    horizon.is_bounded(),
                    "the scheduler materializes the stream, so the horizon must be bounded"
                );
                let mut stream = source.dyn_stream_for(0);
                let mut specs = Vec::new();
                while let Some(job) = stream.next_job() {
                    if !horizon.admits(specs.len(), job.arrival) {
                        break;
                    }
                    specs.push(sched::ArrivalSpec {
                        model: job.model,
                        arrival: job.arrival,
                        work_scale: job.work_scale,
                    });
                }
                specs
            }
        };
        arrivals.sort_by_key(|a| a.arrival);
        let discipline = match mode.custom {
            Some(policy) => policy,
            None => mode.kind.build(),
        };
        let mut tracer = mode.tracer;
        let outcome = sched::run_sched(
            &nodes,
            policy,
            discipline,
            mode.config,
            arrivals,
            &mut tracer,
        );
        (outcome, tracer)
    }
}

fn arrival_of(job: &JobRequest) -> sched::ArrivalSpec {
    sched::ArrivalSpec {
        model: job.model,
        arrival: job.arrival,
        work_scale: job.work_scale,
    }
}

// ---------------------------------------------------------------------------
// Shared placement / drive plumbing (moved here from `Manager`)
// ---------------------------------------------------------------------------

/// Place every job by moving it into its worker's plan (no per-job
/// clone), reporting each `(job, worker)` decision through `on_assign`.
fn place_nested(
    strategy: &mut dyn PlacementStrategy,
    workers: usize,
    jobs: Vec<JobRequest>,
    mut on_assign: impl FnMut(&JobRequest, usize),
) -> Vec<Vec<JobRequest>> {
    let mut loads = vec![WorkerLoad::default(); workers];
    let mut per_worker: Vec<Vec<JobRequest>> = vec![Vec::new(); workers];
    for job in jobs {
        let target = strategy.place(&job, &loads);
        assert!(
            target < workers,
            "strategy returned worker {target} of {workers}"
        );
        record_assignment(&mut loads[target], &job);
        on_assign(&job, target);
        per_worker[target].push(job);
    }
    per_worker
}

/// Flat (CSR-style) variant of [`place_nested`] for the dense headless
/// path: instead of one `Vec` per worker — a million allocations at a
/// million workers — jobs land in a single arena sorted by worker, with
/// `offsets[w]..offsets[w + 1]` slicing worker `w`'s jobs.  The sort is
/// stable, so each worker sees its jobs in exactly the order the nested
/// layout would give it.
fn place_flat(
    strategy: &mut dyn PlacementStrategy,
    workers: usize,
    jobs: Vec<JobRequest>,
    mut on_assign: impl FnMut(&JobRequest, usize),
) -> (Vec<JobRequest>, Vec<usize>) {
    let mut loads = vec![WorkerLoad::default(); workers];
    let mut tagged: Vec<(usize, JobRequest)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let target = strategy.place(&job, &loads);
        assert!(
            target < workers,
            "strategy returned worker {target} of {workers}"
        );
        record_assignment(&mut loads[target], &job);
        on_assign(&job, target);
        tagged.push((target, job));
    }
    tagged.sort_by_key(|&(target, _)| target);
    let mut offsets = vec![0usize; workers + 1];
    for &(target, _) in &tagged {
        offsets[target + 1] += 1;
    }
    for i in 0..workers {
        offsets[i + 1] += offsets[i];
    }
    let flat = tagged.into_iter().map(|(_, job)| job).collect();
    (flat, offsets)
}

/// Drive one session per worker on the sharded executor: at most
/// `available_parallelism` OS threads, each recycling one
/// [`WorkerScratch`] across the worker sessions it processes, all
/// sharing the cluster's image registry.
fn drive_plan<R, F>(
    nodes: &[NodeConfig],
    policy: PolicyKind,
    images: &Arc<ImageRegistry>,
    per_worker: Vec<Vec<JobRequest>>,
    make: &F,
) -> Vec<SessionResult<R::Output>>
where
    R: Recorder,
    R::Output: Send,
    F: Fn(usize) -> R + Sync,
{
    let work: Vec<(usize, NodeConfig, Vec<JobRequest>)> = nodes
        .iter()
        .copied()
        .zip(per_worker)
        .enumerate()
        .map(|(idx, (node, jobs))| (idx, node, jobs))
        .collect();
    executor::map_sharded(
        work,
        || (WorkerScratch::new(), images.clone()),
        |(scratch, images), (idx, node, jobs)| {
            // The per-worker job lists are already in arrival order, so
            // WorkloadPlan::new's sort is a no-op pass.
            let session = Session::builder()
                .node(node)
                .plan(WorkloadPlan::new(jobs))
                .policy_box(policy.build())
                .images(images.clone())
                .recorder(make(idx))
                .scratch(std::mem::take(scratch))
                .build();
            let (result, recycled) = session.run_recycling();
            *scratch = recycled;
            result
        },
    )
}

/// [`drive_plan`] off a streaming [`PlanSource`]: each shard pulls the
/// plan of the worker it is about to simulate, so at no point do all
/// per-worker plans exist at once.
fn drive_source<R, F>(
    nodes: &[NodeConfig],
    policy: PolicyKind,
    images: &Arc<ImageRegistry>,
    source: &dyn PlanSource,
    make: &F,
) -> Vec<SessionResult<R::Output>>
where
    R: Recorder,
    R::Output: Send,
    F: Fn(usize) -> R + Sync,
{
    let work: Vec<(usize, NodeConfig)> = nodes.iter().copied().enumerate().collect();
    executor::map_sharded(
        work,
        || (WorkerScratch::new(), images.clone()),
        |(scratch, images), (idx, node)| {
            let session = Session::builder()
                .node(node)
                .plan(source.next_plan(idx))
                .policy_box(policy.build())
                .images(images.clone())
                .recorder(make(idx))
                .scratch(std::mem::take(scratch))
                .build();
            let (result, recycled) = session.run_recycling();
            *scratch = recycled;
            result
        },
    )
}

/// The open-loop drive: every worker pulls its own stream off `source`
/// and admits arrivals until `horizon` trips, then drains.
fn drive_stream<R, F>(
    nodes: &[NodeConfig],
    policy: PolicyKind,
    images: &Arc<ImageRegistry>,
    source: &dyn DynStreamSource,
    horizon: Horizon,
    make: &F,
) -> Vec<StreamResult<R::Output>>
where
    R: Recorder,
    R::Output: Send,
    F: Fn(usize) -> R + Sync,
{
    let work: Vec<(usize, NodeConfig)> = nodes.iter().copied().enumerate().collect();
    executor::map_sharded(
        work,
        || (WorkerScratch::new(), images.clone()),
        |(scratch, images), (idx, node)| {
            let session = Session::builder()
                .node(node)
                .policy_box(policy.build())
                .images(images.clone())
                .recorder(make(idx))
                .scratch(std::mem::take(scratch))
                .build();
            let (result, recycled) =
                session.run_stream_recycling(source.dyn_stream_for(idx), horizon);
            *scratch = recycled;
            result
        },
    )
}

/// Split per-worker [`StreamResult`]s into the [`ClusterOutcome`] shape
/// (session results + parallel stats vector).
fn split_stream<T>(results: Vec<StreamResult<T>>) -> ClusterOutcome<T> {
    let mut workers = Vec::with_capacity(results.len());
    let mut streams = Vec::with_capacity(results.len());
    let mut tails = Vec::with_capacity(results.len());
    for r in results {
        streams.push(r.stream);
        tails.push(r.tails);
        workers.push(SessionResult {
            output: r.output,
            events_processed: r.events_processed,
            scheduler_overhead_cpu_secs: r.scheduler_overhead_cpu_secs,
        });
    }
    ClusterOutcome {
        workers,
        placements: Vec::new(),
        streams,
        tails,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Spread;
    use flowcon_core::config::FlowConConfig;
    use flowcon_core::recorder::FullRecorder;
    use flowcon_core::worker::RunResult;
    use flowcon_workload::stream::Horizon;

    fn node() -> NodeConfig {
        NodeConfig::default()
    }

    fn base<'w>(workers: usize) -> ClusterSessionBuilder<'w, Headless> {
        ClusterSession::builder().nodes(workers, node())
    }

    #[test]
    fn all_jobs_complete_across_two_workers() {
        let plan = WorkloadPlan::random_n(10, 7);
        let out = base(2)
            .plan(plan)
            .recorder(|_| FullRecorder::new())
            .build()
            .run();
        let completed: usize = out.workers.iter().map(|w| w.output.completions.len()).sum();
        assert_eq!(completed, 10);
        assert_eq!(out.placements.len(), 10);
        // Round-robin: 5 jobs each.
        let w0 = out.placements.iter().filter(|&&w| w == 0).count();
        assert_eq!(w0, 5);
    }

    #[test]
    fn two_workers_beat_one_on_makespan() {
        let plan = WorkloadPlan::random_n(10, 7);
        let run = |workers| {
            base(workers)
                .placement(Spread)
                .plan(plan.clone())
                .build()
                .run()
                .makespan_secs()
        };
        let (one, two) = (run(1), run(2));
        assert!(two < one, "2 workers {two:.0}s vs 1 worker {one:.0}s");
    }

    #[test]
    fn flowcon_policy_runs_on_every_worker() {
        let plan = WorkloadPlan::random_n(8, 9);
        let out = base(2)
            .policy(PolicyKind::FlowCon(FlowConConfig::default()))
            .placement(Spread)
            .plan(plan)
            .recorder(|_| FullRecorder::new())
            .build()
            .run();
        let workers: Vec<RunResult> = out.workers.into_iter().map(RunResult::from).collect();
        assert_eq!(
            workers
                .iter()
                .map(|w| w.summary.completions.len())
                .sum::<usize>(),
            8
        );
        for w in &workers {
            assert_eq!(w.summary.policy, "FlowCon-5%-20");
        }
    }

    #[test]
    fn headless_run_matches_recorded_run_under_na() {
        // The NA baseline ignores measurements, so removing the sampling
        // events cannot change the fluid dynamics: headless and full agree
        // to the engine's 1 µs completion-check margin.
        let plan = WorkloadPlan::random_n(12, 5);
        let full = base(3)
            .plan(plan.clone())
            .recorder(|_| FullRecorder::new())
            .build()
            .run();
        let headless = base(3).plan(plan).build().run();
        assert_eq!(headless.completed_jobs(), 12);
        assert_eq!(headless.placements.len(), 12);
        assert_eq!(headless.placements, full.placements);
        let full_makespan = makespan_over(full.workers.iter().map(|w| w.output.makespan_secs()));
        let diff = (headless.makespan_secs() - full_makespan).abs();
        assert!(diff < 1e-3, "makespan diverged by {diff}s");
        // Headless schedules no sampling events at all.
        assert!(headless.events_processed() < full.events_processed());
        assert!(headless.mean_completion_secs().unwrap() > 0.0);
    }

    #[test]
    fn recorded_run_passes_worker_indices_to_the_factory() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let plan = WorkloadPlan::random_n(6, 2);
        let seen = AtomicU64::new(0);
        let out = base(3)
            .plan(plan)
            .recorder(|idx| {
                seen.fetch_or(1 << idx, Ordering::Relaxed);
                CompletionsOnly::new()
            })
            .build()
            .run();
        assert_eq!(out.workers.len(), 3);
        assert_eq!(seen.load(Ordering::Relaxed), 0b111, "every index seen");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = base(0).build();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn unconfigured_nodes_rejected() {
        let _ = ClusterSession::builder().build();
    }

    #[test]
    fn source_run_matches_the_equivalent_placed_run() {
        use flowcon_workload::{BoundTrace, TraceSource};
        // A trace source slicing round-robin is exactly RoundRobin
        // placement of the same arrival-ordered plan, so the two paths
        // must complete the same jobs at the same makespan.
        let plan = WorkloadPlan::random_n(12, 5);
        let source = TraceSource::new(BoundTrace::from_plan(plan.clone()), 3);
        let placed = base(3).plan(plan).build().run();
        let streamed = base(3).source(&source).build().run();
        assert_eq!(streamed.completed_jobs(), 12);
        assert!(streamed.placements.is_empty(), "the source owns placement");
        for (a, b) in placed.workers.iter().zip(&streamed.workers) {
            assert_eq!(a.output, b.output, "per-worker stats diverged");
            assert_eq!(a.events_processed, b.events_processed);
        }
    }

    #[test]
    fn open_loop_cluster_drives_every_worker_to_the_horizon() {
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), 7).unlabeled();
        let out = base(4).stream(&source, Horizon::jobs(2)).build().run();
        assert_eq!(out.workers.len(), 4);
        assert_eq!(out.streams.len(), 4);
        assert_eq!(out.submitted_jobs(), 8);
        assert_eq!(out.completed_jobs(), 8, "every admitted job drains");
        assert!(out.makespan_secs() > 0.0);
        let totals = out.stream_totals();
        assert_eq!(totals.submitted, 8);
        assert!(totals.utilization() > 0.0 && totals.utilization() <= 1.0);
        assert!(totals.mean_queue_depth() > 0.0);
    }

    #[test]
    fn scheduler_mode_runs_a_plan_to_completion() {
        let plan = WorkloadPlan::random_n(8, 3);
        let out = base(2)
            .policy(PolicyKind::FlowCon(FlowConConfig::default()))
            .plan(plan)
            .scheduler(SchedPolicyKind::Fifo)
            .build()
            .run();
        assert_eq!(out.completed_jobs(), 8);
        assert_eq!(out.policy, "fifo");
        assert!(out.makespan_secs() > 0.0);
    }

    #[test]
    fn completion_lookup_spans_workers_via_placements() {
        // The Manager::run migration note: labels come from zipping the
        // plan's labels with `placements`, lookups from each worker's
        // RunSummary.
        let plan = WorkloadPlan::random_n(4, 3);
        let labels: Vec<String> = plan.jobs.iter().map(|j| j.label.clone()).collect();
        let out = base(2)
            .plan(plan)
            .recorder(|_| FullRecorder::new())
            .build()
            .run();
        assert_eq!(out.placements.len(), labels.len());
        for (label, &worker) in labels.iter().zip(&out.placements) {
            let secs = out.workers[worker].output.completion_of(label);
            assert!(secs.is_some(), "missing {label} on worker {worker}");
            // The placement log is authoritative: no other worker ran it.
            let elsewhere = out
                .workers
                .iter()
                .enumerate()
                .filter(|&(w, _)| w != worker)
                .find_map(|(_, r)| r.output.completion_of(label));
            assert!(elsewhere.is_none(), "{label} completed on two workers");
        }
    }

    #[test]
    fn headless_flowcon_conserves_jobs_at_plausible_makespan() {
        let plan = WorkloadPlan::random_n(12, 5);
        let fc = || base(3).policy(PolicyKind::FlowCon(FlowConConfig::default()));
        let full = fc()
            .plan(plan.clone())
            .recorder(|_| FullRecorder::new())
            .build()
            .run();
        let full_makespan = makespan_over(full.workers.iter().map(|w| w.output.makespan_secs()));
        let headless = fc().plan(plan).build().run();
        assert_eq!(headless.completed_jobs(), 12);
        // Different eval-noise stream, same physics scale: within a few %.
        let rel = (headless.makespan_secs() - full_makespan).abs() / full_makespan;
        assert!(rel < 0.05, "headless makespan off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn open_loop_builder_accepts_cyclic_trace_sources() {
        use flowcon_workload::TraceStreamSource;
        // A 6-job plan cycled across 3 workers: each worker replays its
        // 2-row slice repeatedly until the 5-job-per-worker horizon.
        let plan = WorkloadPlan::random_n(6, 11);
        let source =
            TraceStreamSource::new(flowcon_workload::BoundTrace::from_plan(plan).unlabeled(), 3)
                .cyclic();
        let out = base(3).stream(&source, Horizon::jobs(5)).build().run();
        assert_eq!(out.submitted_jobs(), 15, "cyclic replay is unbounded");
        assert_eq!(out.completed_jobs(), 15);
        assert!(out.makespan_secs() > 0.0);
        assert!(out.stream_totals().utilization() > 0.0);
    }

    #[test]
    fn synthetic_source_drives_every_worker() {
        use flowcon_workload::{ArrivalProcess, SyntheticSource};
        let source = SyntheticSource::new(ArrivalProcess::poisson(0.05), 2, 7).unlabeled();
        let out = base(4).source(&source).build().run();
        assert_eq!(out.workers.len(), 4);
        assert_eq!(out.completed_jobs(), 4 * 2);
        assert!(out.makespan_secs() > 0.0);
    }

    #[test]
    fn open_loop_tails_ride_beside_the_stream_stats() {
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), 7).unlabeled();
        let out = base(3).stream(&source, Horizon::jobs(4)).build().run();
        assert_eq!(out.tails.len(), 3, "one tail aggregate per worker");
        let totals = out.tail_totals();
        assert_eq!(totals.exits(), 12, "every exit sampled exactly once");
        let p = totals.sojourn_percentiles();
        assert!(p.p50 > 0.0 && p.p50 <= p.p95 && p.p95 <= p.p99);
        // Single-node fluid workers allocate at admission: zero queue-wait.
        assert_eq!(totals.queue_wait_percentiles().p99, 0.0);
    }

    #[test]
    fn scheduler_mode_consumes_a_bounded_stream() {
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), 7).unlabeled();
        let out = base(2)
            .stream(&source, Horizon::jobs(6))
            .scheduler(SchedPolicyKind::Tiresias)
            .build()
            .run();
        assert_eq!(out.submitted, 6);
        assert_eq!(out.completed_jobs(), 6);
    }
}
