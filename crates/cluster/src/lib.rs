//! # flowcon-cluster
//!
//! The manager/worker cluster layer of Fig. 2.
//!
//! In the paper, managers "accept specifications from the user", select a
//! worker to host each container, and otherwise only interact with the
//! workers' container pools — all of FlowCon runs worker-side.  This crate
//! implements that split so multi-worker deployments (the paper's
//! architecture, evaluated there on a single worker) can be studied:
//!
//! * [`policy_kind`] — a serializable policy selector so managers can
//!   configure workers uniformly.
//! * [`placement`] — placement strategies (round-robin, spread, least
//!   loaded by submitted work) used when the manager assigns a job.
//! * [`executor`] — the sharded executor: a bounded shared-cursor pool
//!   with per-shard reusable state, so 1000-worker clusters run on
//!   `available_parallelism` OS threads.
//! * [`manager`] — result carriers of the dense headless path
//!   ([`PlacedHeadless`], [`ClusterRun`]); the legacy `Manager` façade
//!   itself has been removed (see the migration table in [`session`]).
//! * [`session`] — the front door: one builder covering closed plans,
//!   streamed plan sources, open-loop job streams, pluggable recorders,
//!   and the online scheduler.
//! * [`sched`] — the cluster-wide online scheduler: a global admission
//!   queue, pluggable disciplines ([`FifoPolicy`], [`GandivaPolicy`],
//!   [`TiresiasPolicy`]), and node-local FlowCon sims advancing between
//!   quantum barriers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod manager;
pub mod placement;
pub mod policy_kind;
pub mod sched;
pub mod session;

pub use manager::{ClusterRun, PlacedHeadless};
pub use sched::{
    ClusterPolicy, ClusterView, Decision, FifoPolicy, GandivaPolicy, QueuedJobView, RunningJobView,
    SchedAction, SchedConfig, SchedOutcome, SchedPolicyKind, TiresiasPolicy,
};
pub use session::{
    BoxedStream, ClusterOutcome, ClusterSession, ClusterSessionBuilder, DynStreamSource, Headless,
    Recorded, Sched,
};
// The dense headless path's tunables, re-exported for the repro CLI.
pub use flowcon_core::dense::QueueKind;
pub use placement::{LeastLoaded, PlacementStrategy, RoundRobin, Spread};
pub use policy_kind::PolicyKind;
// The streaming plan/stream-source surface, re-exported so cluster callers
// don't need a direct flowcon-workload dependency for the common path.
pub use flowcon_workload::source::{PlanSource, SyntheticSource, TraceSource};
pub use flowcon_workload::stream::{
    Horizon, JobStream, StreamSource, SyntheticStreamSource, TraceStreamSource,
};
