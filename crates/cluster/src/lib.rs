//! # flowcon-cluster
//!
//! The manager/worker cluster layer of Fig. 2.
//!
//! In the paper, managers "accept specifications from the user", select a
//! worker to host each container, and otherwise only interact with the
//! workers' container pools — all of FlowCon runs worker-side.  This crate
//! implements that split so multi-worker deployments (the paper's
//! architecture, evaluated there on a single worker) can be studied:
//!
//! * [`policy_kind`] — a serializable policy selector so managers can
//!   configure workers uniformly.
//! * [`placement`] — placement strategies (round-robin, spread, least
//!   loaded by submitted work) used when the manager assigns a job.
//! * [`executor`] — the sharded executor: a bounded shared-cursor pool
//!   with per-shard reusable state, so 1000-worker clusters run on
//!   `available_parallelism` OS threads.
//! * [`manager`] — the manager: splits a workload plan across workers (or
//!   streams per-worker plans off a [`PlanSource`]) and drives every
//!   worker simulation on the sharded executor; open-loop clusters run
//!   off a [`StreamSource`] through [`manager::Manager::run_open_loop`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod manager;
pub mod placement;
pub mod policy_kind;

pub use manager::{ClusterResult, ClusterRun, Manager, OpenLoopRun, PlacedHeadless};
// The dense headless path's tunables, re-exported for the repro CLI.
pub use flowcon_core::dense::QueueKind;
pub use placement::{LeastLoaded, PlacementStrategy, RoundRobin, Spread};
pub use policy_kind::PolicyKind;
// The streaming plan/stream-source surface, re-exported so cluster callers
// don't need a direct flowcon-workload dependency for the common path.
pub use flowcon_workload::source::{PlanSource, SyntheticSource, TraceSource};
pub use flowcon_workload::stream::{
    Horizon, JobStream, StreamSource, SyntheticStreamSource, TraceStreamSource,
};
