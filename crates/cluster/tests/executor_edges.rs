//! Executor edge cases (ISSUE-6 satellite): clusters smaller than the
//! shard count, a single worker, and empty plans/plan sources — each
//! asserted **bit-identical** to a plain sequential loop over
//! `Session::run`, the reference path with no executor, no sharding, and
//! no dense arenas.
//!
//! The dense headless path reuses shard-owned arenas across workers, so
//! these shapes are exactly where recycling bugs would show up: a shard
//! that drives 0 or 1 workers, shards that outnumber workers, and workers
//! whose plans are empty.

use flowcon_cluster::{
    ClusterOutcome, ClusterSession, ClusterSessionBuilder, PolicyKind, QueueKind, TraceSource,
};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::recorder::CompletionsOnly;
use flowcon_core::session::{Session, SessionResult};
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_metrics::summary::CompletionStats;

fn node() -> NodeConfig {
    NodeConfig::default().with_seed(0xF10C)
}

fn base(workers: usize) -> ClusterSessionBuilder<'static> {
    ClusterSession::builder()
        .nodes(workers, node())
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
}

/// The reference: given the placements a cluster run reports, rebuild each
/// worker's plan and run it through a plain `Session` loop — one worker at
/// a time, no executor, object path.  Seeds replicate the builder's stride.
fn sequential_reference(
    workers: usize,
    plan: &WorkloadPlan,
    placements: &[usize],
) -> Vec<SessionResult<CompletionStats>> {
    (0..workers)
        .map(|w| {
            let jobs: Vec<JobRequest> = plan
                .jobs
                .iter()
                .enumerate()
                .filter(|&(job, _)| placements[job] == w)
                .map(|(_, job)| job.clone())
                .collect();
            let seeded = node().with_seed(node().seed.wrapping_add(w as u64 * 0x9E37_79B9));
            Session::builder()
                .node(seeded)
                .plan(WorkloadPlan::new(jobs))
                .policy_box(PolicyKind::FlowCon(FlowConConfig::default()).build())
                .recorder(CompletionsOnly::new())
                .build()
                .run()
        })
        .collect()
}

fn assert_bit_identical(
    run: &ClusterOutcome<CompletionStats>,
    reference: &[SessionResult<CompletionStats>],
) {
    assert_eq!(run.workers.len(), reference.len());
    for (w, (a, b)) in run.workers.iter().zip(reference).enumerate() {
        assert_eq!(a.output, b.output, "worker {w} stats diverged");
        assert_eq!(
            a.events_processed, b.events_processed,
            "worker {w} event count diverged"
        );
    }
}

#[test]
fn fewer_workers_than_shards_matches_the_sequential_path() {
    // 2–3 workers on a multi-core machine: `shard_count` is capped by the
    // item count, so some executor shapes collapse while others don't.
    for workers in [2usize, 3] {
        let plan = WorkloadPlan::random_n(workers * 4, 17);
        let run = base(workers).plan(plan.clone()).build().run();
        let reference = sequential_reference(workers, &plan, &run.placements);
        assert_bit_identical(&run, &reference);
    }
}

#[test]
fn single_worker_cluster_matches_a_single_session() {
    let plan = WorkloadPlan::random_n(6, 23);
    let run = base(1).plan(plan.clone()).build().run();
    assert!(run.placements.iter().all(|&w| w == 0));
    let reference = sequential_reference(1, &plan, &run.placements);
    assert_bit_identical(&run, &reference);
    assert_eq!(run.completed_jobs(), 6);
}

#[test]
fn empty_plan_runs_every_worker_to_an_instant_drain() {
    let run = base(5).plan(WorkloadPlan::new(Vec::new())).build().run();
    assert_eq!(run.workers.len(), 5);
    assert_eq!(run.completed_jobs(), 0);
    assert!(run.placements.is_empty());
    for w in &run.workers {
        assert_eq!(w.events_processed, 0, "no events without arrivals");
        assert_eq!(w.output.algorithm_runs, 0);
    }
}

#[test]
fn empty_plan_source_matches_the_empty_placed_run() {
    let source = TraceSource::new(
        flowcon_workload::BoundTrace::from_plan(WorkloadPlan::new(Vec::new())),
        4,
    );
    let placed = base(4).plan(WorkloadPlan::new(Vec::new())).build().run();
    let streamed = base(4).source(&source).build().run();
    assert_eq!(streamed.completed_jobs(), 0);
    for (a, b) in placed.workers.iter().zip(&streamed.workers) {
        assert_eq!(a.output, b.output);
        assert_eq!(a.events_processed, b.events_processed);
    }
}

#[test]
fn calendar_queue_cluster_is_bit_identical_to_the_heap() {
    // The per-run queue choice must be invisible in the results — the
    // whole-cluster version of the randomized queue comparison in
    // `flowcon-sim` and the per-worker one in `flowcon_core::dense`.
    let plan = WorkloadPlan::random_n(24, 31);
    let heap = base(4)
        .plan(plan.clone())
        .queue(QueueKind::Heap)
        .build()
        .run();
    let calendar = base(4).plan(plan).queue(QueueKind::Calendar).build().run();
    assert_eq!(heap.placements, calendar.placements);
    for (a, b) in heap.workers.iter().zip(&calendar.workers) {
        assert_eq!(a.output, b.output);
        assert_eq!(a.events_processed, b.events_processed);
    }
}
