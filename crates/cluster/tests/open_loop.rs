//! Open-loop cluster correctness: same seed ⇒ bit-identical completion
//! sequences, whether workers run on the sharded executor
//! (`ClusterSession` with a `stream` workload) or in a plain sequential
//! loop over `Session::run_stream` — the `StreamSource` purity contract,
//! end to end.

use flowcon_cluster::{
    ClusterOutcome, ClusterSession, ClusterSessionBuilder, Horizon, PolicyKind, StreamSource,
};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::recorder::CompletionsOnly;
use flowcon_core::session::{Session, StreamResult};
use flowcon_metrics::summary::CompletionStats;
use flowcon_workload::{ArrivalProcess, BoundTrace, SyntheticStreamSource, TraceStreamSource};

const WORKERS: usize = 12;

fn node() -> NodeConfig {
    NodeConfig::default().with_seed(0xF10C)
}

fn base() -> ClusterSessionBuilder<'static> {
    ClusterSession::builder()
        .nodes(WORKERS, node())
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
}

/// The reference: one `Session::run_stream` per worker, strictly in order
/// on the calling thread (mirrors the builder's per-worker seeding).
fn sequential<S: StreamSource>(source: &S, horizon: Horizon) -> Vec<StreamResult<CompletionStats>> {
    (0..WORKERS)
        .map(|w| {
            let node = node().with_seed(node().seed.wrapping_add(w as u64 * 0x9E37_79B9));
            Session::builder()
                .node(node)
                .policy_box(PolicyKind::FlowCon(FlowConConfig::default()).build())
                .recorder(CompletionsOnly::new())
                .build()
                .run_stream(source.stream_for(w), horizon)
        })
        .collect()
}

fn assert_bit_identical(
    sharded: &ClusterOutcome<CompletionStats>,
    reference: &[StreamResult<CompletionStats>],
) {
    assert_eq!(sharded.workers.len(), reference.len());
    assert_eq!(sharded.streams.len(), reference.len());
    assert_eq!(sharded.tails.len(), reference.len());
    for (w, (a, b)) in sharded.workers.iter().zip(reference).enumerate() {
        assert_eq!(a.output, b.output, "worker {w}: completion sequence");
        assert_eq!(a.events_processed, b.events_processed, "worker {w}");
        assert_eq!(
            sharded.streams[w], b.stream,
            "worker {w}: steady-state stats"
        );
        assert_eq!(
            sharded.tails[w], b.tails,
            "worker {w}: sojourn/queue-wait sketches"
        );
    }
    // The merged tail view is bit-identical to folding the sequential
    // per-worker sketches in worker-index order — the ISSUE-8 sharded ≡
    // sequential acceptance pin for the SLO metrics layer.
    let mut folded = flowcon_metrics::sojourn::SojournStats::new();
    for b in reference {
        folded.merge(&b.tails);
    }
    assert_eq!(sharded.tail_totals(), folded, "merged tail sketches");
}

#[test]
fn sharded_open_loop_is_bit_identical_to_a_sequential_loop() {
    let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.04), 0xC1A5).unlabeled();
    let horizon = Horizon::jobs(3);
    let sharded = base().stream(&source, horizon).build().run();
    let reference = sequential(&source, horizon);
    assert_bit_identical(&sharded, &reference);
    // And the sharded path is self-reproducible.
    let again = base().stream(&source, horizon).build().run();
    assert_bit_identical(&again, &reference);
}

#[test]
fn cyclic_trace_open_loop_is_deterministic_and_conserves_jobs() {
    use flowcon_dl::workload::WorkloadPlan;
    let bound = BoundTrace::from_plan(WorkloadPlan::random_n(36, 5)).unlabeled();
    let source = TraceStreamSource::new(bound, WORKERS).cyclic();
    let horizon = Horizon::jobs(4);
    let sharded = base().stream(&source, horizon).build().run();
    assert_eq!(sharded.submitted_jobs(), WORKERS * 4);
    assert_eq!(sharded.completed_jobs(), WORKERS * 4);
    let reference = sequential(&source, horizon);
    assert_bit_identical(&sharded, &reference);
}

#[test]
fn time_horizon_bounds_every_workers_admission_window() {
    use flowcon_sim::time::SimTime;
    let source = SyntheticStreamSource::new(ArrivalProcess::bursty(0.4, 0.0, 25.0, 75.0), 9);
    let until = SimTime::from_secs(200);
    let run = base()
        .stream(&source, Horizon::until(until))
        .recorder(|_| flowcon_core::recorder::FullRecorder::new())
        .build()
        .run();
    let mut admitted = 0usize;
    for (w, stream) in run.workers.iter().zip(&run.streams) {
        for c in &w.output.completions {
            assert!(c.arrival <= until, "admission after the horizon");
            admitted += 1;
        }
        assert_eq!(stream.completed, stream.submitted, "drained");
    }
    assert_eq!(admitted, run.submitted_jobs());
    assert!(admitted > 0, "a 200 s bursty window admits something");
}
