//! Determinism contract of trace replay: same seed + same trace ⇒
//! bit-identical `CompletionStats`, whether the workers run on the sharded
//! executor (`ClusterSession` with a `source` workload) or in a plain
//! sequential loop, and however the `PlanSource` slices are pulled.

use std::sync::Arc;

use flowcon_cluster::{ClusterSession, PolicyKind};
use flowcon_container::image::shared_dl_defaults;
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::recorder::CompletionsOnly;
use flowcon_core::session::Session;
use flowcon_metrics::summary::CompletionStats;
use flowcon_workload::{
    ArrivalProcess, ArrivalTrace, PlanSource, SyntheticSource, TraceCatalog, TraceSource,
};

const WORKERS: usize = 7;
const NODE_SEED: u64 = 0xF10C;

/// The same per-worker node seeds the builder derives from a uniform set.
fn nodes() -> Vec<NodeConfig> {
    let base = NodeConfig::default().with_seed(NODE_SEED);
    (0..WORKERS)
        .map(|i| base.with_seed(base.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
        .collect()
}

/// The reference: drive every worker one after another on this thread,
/// with a fresh session each (no scratch recycling, shared images) — the
/// simplest possible execution of the same source.
fn run_sequential<S: PlanSource>(source: &S) -> Vec<CompletionStats> {
    let images = shared_dl_defaults();
    nodes()
        .into_iter()
        .enumerate()
        .map(|(idx, node)| {
            Session::builder()
                .node(node)
                .plan(source.next_plan(idx))
                .policy(flowcon_core::policy::FlowConPolicy::new(
                    FlowConConfig::default(),
                ))
                .images(Arc::clone(&images))
                .recorder(CompletionsOnly::new())
                .build()
                .run()
                .output
        })
        .collect()
}

fn assert_sharded_matches_sequential<S: PlanSource>(source: &S, jobs: usize) {
    let run = || {
        ClusterSession::builder()
            .node_configs(nodes())
            .policy(PolicyKind::FlowCon(FlowConConfig::default()))
            .source(source)
            .build()
            .run()
    };
    let sharded = run();
    let again = run();
    let sequential = run_sequential(source);

    assert_eq!(sharded.completed_jobs(), jobs);
    for (w, (shard, seq)) in sharded.workers.iter().zip(&sequential).enumerate() {
        // CompletionStats holds SimTime (integer ticks): equality is
        // bit-identity, not an epsilon compare.
        assert_eq!(&shard.output, seq, "worker {w}: sharded vs sequential");
        assert_eq!(
            shard.output, again.workers[w].output,
            "worker {w}: two sharded runs"
        );
        assert_eq!(shard.events_processed, again.workers[w].events_processed);
    }
}

#[test]
fn trace_replay_is_bit_identical_across_execution_paths() {
    // 41 jobs (not a multiple of 7): slices are uneven, some workers get
    // one more row than others.
    let doc: String = (0..41)
        .map(|i| format!("j{i},{},{}\n", ["gru", "mnist-tf", "vae"][i % 3], i * 3))
        .collect();
    let trace = ArrivalTrace::parse(&doc).unwrap();
    let bound = TraceCatalog::table1().unlabeled().bind(&trace).unwrap();
    let source = TraceSource::new(bound, WORKERS);
    assert_sharded_matches_sequential(&source, 41);
}

#[test]
fn synthetic_source_is_bit_identical_across_execution_paths() {
    let source =
        SyntheticSource::new(ArrivalProcess::bursty(0.5, 0.0, 20.0, 40.0), 3, 99).unlabeled();
    assert_sharded_matches_sequential(&source, WORKERS * 3);
}

#[test]
fn per_worker_slices_do_not_depend_on_poll_order() {
    let source = SyntheticSource::new(ArrivalProcess::poisson(0.02), 4, 123);
    // Pull plans in scrambled order, twice; a slice is a pure function of
    // the worker id, so order cannot matter.
    let scrambled: Vec<_> = [5usize, 0, 6, 2, 4, 1, 3]
        .iter()
        .map(|&w| (w, source.next_plan(w)))
        .collect();
    for (w, plan) in scrambled {
        assert_eq!(plan, source.next_plan(w), "worker {w}");
    }
}
