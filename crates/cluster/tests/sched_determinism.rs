//! Determinism and edge cases of the online cluster scheduler
//! (ISSUE-7 satellite): same seed + same trace ⇒ bit-identical decision
//! log and completion list, whether node advances run sequentially or on
//! the sharded executor, and across repeated runs — for every built-in
//! discipline.  Plus the preemption corners a discipline can reach:
//! preempting at the very first barrier, migrating a job to the node it
//! already occupies, and scheduling rounds with an empty admission queue.

use flowcon_cluster::{
    ClusterPolicy, ClusterSession, ClusterSessionBuilder, ClusterView, PolicyKind, Sched,
    SchedAction, SchedOutcome, SchedPolicyKind,
};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::time::SimTime;
use flowcon_sim::trace::FlightRecorder;

fn base(workers: usize) -> ClusterSessionBuilder<'static, Sched> {
    ClusterSession::builder()
        .nodes(workers, NodeConfig::default().with_seed(0xF10C))
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .scheduler(SchedPolicyKind::Fifo)
}

fn run(kind: SchedPolicyKind, sequential: bool) -> SchedOutcome {
    base(4)
        .plan(WorkloadPlan::random_n(24, 0xC1A5))
        .scheduler(kind)
        .sequential(sequential)
        .build()
        .run()
}

#[test]
fn decision_logs_are_bit_identical_across_advance_modes() {
    for kind in SchedPolicyKind::ALL {
        let seq = run(kind, true);
        let shard = run(kind, false);
        // `SchedOutcome` is PartialEq over the decision log, the exact
        // completion times, and the stream accounting — full bit-compare.
        assert_eq!(seq, shard, "{} diverged across advance modes", kind.name());
        assert_eq!(seq.completed_jobs(), 24, "{} lost jobs", kind.name());
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    for kind in SchedPolicyKind::ALL {
        let a = run(kind, false);
        let b = run(kind, false);
        assert_eq!(a, b, "{} is not reproducible", kind.name());
    }
}

fn run_traced(kind: SchedPolicyKind, sequential: bool) -> (SchedOutcome, FlightRecorder) {
    base(4)
        .plan(WorkloadPlan::random_n(24, 0xC1A5))
        .scheduler(kind)
        .sequential(sequential)
        .tracer(FlightRecorder::with_capacity(1 << 14))
        .build()
        .run_traced()
}

#[test]
fn traced_timelines_are_bit_identical_across_advance_modes() {
    // The flight-recorder merge (per-node forks absorbed in node-index
    // order at each barrier) must make the sharded run's timeline — down
    // to the exported Chrome JSON byte stream — identical to the
    // sequential run's, for every built-in discipline.
    for kind in SchedPolicyKind::ALL {
        let (seq_out, seq_rec) = run_traced(kind, true);
        let (shard_out, shard_rec) = run_traced(kind, false);
        assert_eq!(seq_out, shard_out, "{} outcome diverged", kind.name());
        assert_eq!(seq_rec.dropped(), 0, "{} dropped events", kind.name());
        assert_eq!(shard_rec.dropped(), 0, "{} dropped events", kind.name());
        let seq_events = seq_rec.events();
        let shard_events = shard_rec.events();
        assert!(!seq_events.is_empty(), "{} recorded nothing", kind.name());
        assert_eq!(
            seq_events,
            shard_events,
            "{} timeline diverged across advance modes",
            kind.name()
        );
        assert_eq!(
            flowcon_metrics::tracelog::chrome_trace_json(&seq_events, seq_rec.dropped()),
            flowcon_metrics::tracelog::chrome_trace_json(&shard_events, shard_rec.dropped()),
            "{} exported JSON diverged",
            kind.name()
        );
    }
}

/// Preempts every running job at every barrier, then replaces it — the
/// most hostile legal discipline.  Exercises preemption at the first
/// barrier a job ever runs in (t = 0 for arrival-0 jobs).
struct Thrash;

impl ClusterPolicy for Thrash {
    fn name(&self) -> &'static str {
        "thrash"
    }

    fn schedule(&mut self, view: &ClusterView<'_>, actions: &mut Vec<SchedAction>) {
        let mut free: Vec<usize> = (0..view.node_count()).map(|n| view.free_slots(n)).collect();
        for (node, slots) in free.iter_mut().enumerate() {
            for r in view.running_on(node) {
                actions.push(SchedAction::Preempt { job: r.id });
                *slots += 1;
            }
        }
        for job in view.queue {
            if let Some(node) = free.iter().position(|&f| f > 0) {
                actions.push(SchedAction::Place { job: job.id, node });
                free[node] -= 1;
            }
        }
    }
}

#[test]
fn preempting_at_the_first_barrier_still_drains_the_workload() {
    // Every job arrives at t=0, so the first Preempt of each fires at the
    // barrier right after its first (and only partial) quantum of service
    // — and jobs placed-then-preempted at the same barrier never run at
    // all that round.  The workload must still drain, with attained
    // service preserved across every round-trip.
    let jobs: Vec<_> = WorkloadPlan::random_n(6, 11)
        .jobs
        .into_iter()
        .map(|mut j| {
            j.arrival = SimTime::ZERO;
            j.work_scale = 0.02;
            j
        })
        .collect();
    let out = base(2)
        .plan(WorkloadPlan::new(jobs))
        .discipline(Box::new(Thrash))
        .sequential(true)
        .build()
        .run();
    assert_eq!(out.policy, "thrash");
    assert_eq!(out.completed_jobs(), 6);
    assert!(out.preemptions > 0, "thrash must actually preempt");
    // The very first decision round happens at t=0 and preemptions begin
    // at the first barrier after any job has run.
    assert_eq!(out.decisions[0].at, SimTime::ZERO);
    assert!(out
        .decisions
        .iter()
        .any(|d| matches!(d.action, SchedAction::Preempt { .. })));
    for c in &out.completions {
        assert!(c.finished >= c.arrival);
    }
}

/// Places FIFO, then "migrates" every running job to the node it is
/// already on: a logged no-op that must not perturb physics.
struct SelfMigrate {
    inner: Box<dyn ClusterPolicy>,
}

impl ClusterPolicy for SelfMigrate {
    fn name(&self) -> &'static str {
        "self-migrate"
    }

    fn schedule(&mut self, view: &ClusterView<'_>, actions: &mut Vec<SchedAction>) {
        self.inner.schedule(view, actions);
        for node in 0..view.node_count() {
            for r in view.running_on(node) {
                actions.push(SchedAction::Migrate { job: r.id, node });
            }
        }
    }
}

#[test]
fn migrating_to_the_same_node_is_a_logged_no_op() {
    let plan = WorkloadPlan::random_n(10, 5);
    let noisy = base(3)
        .plan(plan.clone())
        .discipline(Box::new(SelfMigrate {
            inner: SchedPolicyKind::Fifo.build(),
        }))
        .sequential(true)
        .build()
        .run();
    let clean = base(3).plan(plan).sequential(true).build().run();

    // Same-node migrations are logged but never applied.
    assert_eq!(noisy.migrations, 0);
    assert!(noisy
        .decisions
        .iter()
        .any(|d| matches!(d.action, SchedAction::Migrate { .. })));
    // And the physics are untouched: identical completions and stream
    // accounting, decision logs differing only by the no-op migrations.
    assert_eq!(noisy.completions, clean.completions);
    assert_eq!(noisy.stream, clean.stream);
    let noisy_real: Vec<_> = noisy
        .decisions
        .iter()
        .filter(|d| !matches!(d.action, SchedAction::Migrate { .. }))
        .collect();
    let clean_real: Vec<_> = clean.decisions.iter().collect();
    assert_eq!(noisy_real, clean_real);
}

#[test]
fn an_empty_admission_queue_round_makes_no_decisions() {
    // One early job, one very late job: between them the queue is empty
    // and all nodes go idle, so the engine fast-forwards without waking
    // the policy.  No decision may fall in the gap.
    let mut jobs = WorkloadPlan::random_n(2, 9).jobs;
    jobs[0].arrival = SimTime::ZERO;
    jobs[0].work_scale = 0.02;
    jobs[1].arrival = SimTime::from_secs(500_000);
    jobs[1].work_scale = 0.02;
    let out = base(2)
        .plan(WorkloadPlan::new(jobs))
        .sequential(true)
        .build()
        .run();
    assert_eq!(out.completed_jobs(), 2);
    assert_eq!(
        out.decisions.len(),
        2,
        "exactly one placement per job: {:?}",
        out.decisions
    );
    assert_eq!(out.decisions[0].at, SimTime::ZERO);
    assert!(out.decisions[1].at >= SimTime::from_secs(500_000));
    // The second job was fast-forwarded to, not slept past.
    assert!(out.completions[1].finished >= SimTime::from_secs(500_000));
}

#[test]
fn an_empty_workload_runs_no_rounds() {
    let out = base(2)
        .plan(WorkloadPlan::new(Vec::new()))
        .sequential(true)
        .build()
        .run();
    assert_eq!(out.completed_jobs(), 0);
    assert!(out.decisions.is_empty());
    assert_eq!(out.makespan_secs(), 0.0);
    assert_eq!(out.mean_queueing_delay_secs(), 0.0);
}
