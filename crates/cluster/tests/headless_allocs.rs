//! The headless allocation budget: a `CompletionsOnly` cluster run must
//! cost at most **20 heap allocations per simulated worker** (marginal).
//!
//! PR 2 measured ~113 allocs/worker on the full-recording path — dominated
//! by a fresh `Daemon` + `ImageRegistry::with_dl_defaults()` per worker and
//! the per-job `RunSummary` series.  The session redesign shares one image
//! registry per cluster, disables the per-container stats window, recycles
//! the engine's event heap through `WorkerScratch`, moves plan labels
//! instead of cloning them, and (headless) never schedules sampling events
//! or clones a label — this test is the wire that keeps it that way.
//!
//! The budget is asserted on the *marginal* cost between two cluster sizes
//! so fixed per-run overhead (shard thread spawns, result vectors, the
//! allocator's warm-up) cancels out; counting is process-wide because the
//! executor's shard threads do the actual work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use flowcon_cluster::{
    ClusterSession, ClusterSessionBuilder, Horizon, PolicyKind, SchedPolicyKind,
};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::time::SimTime;
use flowcon_workload::{ArrivalProcess, SyntheticSource, SyntheticStreamSource, TraceSource};

/// The headless allocs/worker ceiling (the ISSUE-3 acceptance budget) for
/// the object-path configurations (plan sources, open loop).
const ALLOCS_PER_WORKER_BUDGET: f64 = 20.0;

/// The **dense**-path ceiling (the ISSUE-6 acceptance budget): a placed
/// headless run goes through `flowcon_core::dense` — arena state recycled
/// per shard, no daemon/pool/monitor objects — so the marginal cost per
/// worker is just the policy box, its list buffers, and the completion
/// stats.
const DENSE_ALLOCS_PER_WORKER_BUDGET: f64 = 10.0;

/// Tests in this binary run on parallel threads, but the allocation
/// counter is process-wide: every test that toggles `COUNTING` (or that
/// allocates heavily) holds this lock so no stray allocations bill a
/// counting window.
static COUNT_WINDOW: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

fn count_if_enabled() {
    if COUNTING.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_enabled();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_enabled();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_enabled();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn base(workers: usize) -> ClusterSessionBuilder<'static> {
    ClusterSession::builder()
        .nodes(workers, NodeConfig::default().with_seed(0xF10C))
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
}

/// Process-wide allocations of one headless run (plan pre-built outside
/// the counting window).
fn allocs_of_headless_run(workers: usize, plan: WorkloadPlan) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let run = base(workers).plan(plan).build().run();
    assert_eq!(run.completed_jobs(), workers * 2, "jobs conserved");
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn headless_cluster_run_stays_within_the_allocs_per_worker_budget() {
    let _window = COUNT_WINDOW.lock().unwrap();
    const SMALL: usize = 64;
    const LARGE: usize = 320;
    let small_plan = WorkloadPlan::random_n(SMALL * 2, 0xC1A5);
    let large_plan = WorkloadPlan::random_n(LARGE * 2, 0xC1A5);

    // Warm up once: process-wide one-time costs (the shared image
    // registry's OnceLock, thread-local runtime state) must not bill the
    // measured runs.
    base(SMALL).plan(small_plan.clone()).build().run();

    COUNTING.store(true, Ordering::Relaxed);
    let small = allocs_of_headless_run(SMALL, small_plan);
    let large = allocs_of_headless_run(LARGE, large_plan);
    COUNTING.store(false, Ordering::Relaxed);

    let marginal = (large.saturating_sub(small)) as f64 / (LARGE - SMALL) as f64;
    eprintln!("dense headless marginal cost: {marginal:.2} allocs/worker");
    assert!(
        marginal <= DENSE_ALLOCS_PER_WORKER_BUDGET,
        "dense headless marginal cost {marginal:.1} allocs/worker exceeds the \
         {DENSE_ALLOCS_PER_WORKER_BUDGET} budget ({small} allocs at {SMALL} workers, \
         {large} at {LARGE})"
    );
    // Sanity on the absolute number too: fixed overhead (thread spawns,
    // result vectors) must stay small next to the per-worker work.
    let absolute = large as f64 / LARGE as f64;
    assert!(
        absolute <= 3.0 * DENSE_ALLOCS_PER_WORKER_BUDGET,
        "absolute headless cost {absolute:.1} allocs/worker is out of scale"
    );
}

/// Process-wide allocations of one source-driven headless run.
fn allocs_of_source_run(workers: usize, jobs_per_worker: usize) -> u64 {
    // An unlabeled synthetic source: plan construction happens *inside*
    // the measured run (that is the point of a streaming source), so the
    // per-plan vector and arrival draws are part of the budget.
    let source =
        SyntheticSource::new(ArrivalProcess::poisson(0.05), jobs_per_worker, 0xC1A5).unlabeled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let run = base(workers).source(&source).build().run();
    assert_eq!(
        run.completed_jobs(),
        workers * jobs_per_worker,
        "jobs conserved"
    );
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn plan_source_driven_cluster_stays_within_the_same_budget() {
    let _window = COUNT_WINDOW.lock().unwrap();
    const SMALL: usize = 64;
    const LARGE: usize = 320;

    allocs_of_source_run(SMALL, 2); // warm-up (OnceLock, thread-locals)

    COUNTING.store(true, Ordering::Relaxed);
    let small = allocs_of_source_run(SMALL, 2);
    let large = allocs_of_source_run(LARGE, 2);
    COUNTING.store(false, Ordering::Relaxed);

    let marginal = (large.saturating_sub(small)) as f64 / (LARGE - SMALL) as f64;
    assert!(
        marginal <= ALLOCS_PER_WORKER_BUDGET,
        "source-driven marginal cost {marginal:.1} allocs/worker exceeds the \
         {ALLOCS_PER_WORKER_BUDGET} budget ({small} allocs at {SMALL} workers, \
         {large} at {LARGE})"
    );
}

/// Process-wide allocations of one open-loop headless run: each worker
/// pulls an unbounded Poisson stream and admits ~2 jobs before the
/// horizon, so job admission, stream sampling, *and* the one-ahead pull
/// all bill the counting window.
fn allocs_of_open_loop_run(workers: usize) -> u64 {
    let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.0005), 0xC1A5).unlabeled();
    // The `repro stream` acceptance shape: rate × until ≈ 1.8 jobs/worker
    // expected, hard-capped at 2 so the workload is identical per worker
    // count (the marginal math needs equal per-worker work).
    let horizon = Horizon::until(SimTime::from_secs(3600)).and_jobs(2);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let run = base(workers).stream(&source, horizon).build().run();
    assert_eq!(run.completed_jobs(), run.submitted_jobs(), "drained");
    assert!(run.submitted_jobs() > workers, "arrivals actually flow");
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn open_loop_cluster_stays_within_the_same_budget() {
    let _window = COUNT_WINDOW.lock().unwrap();
    const SMALL: usize = 64;
    const LARGE: usize = 320;

    allocs_of_open_loop_run(SMALL); // warm-up (OnceLock, thread-locals)

    COUNTING.store(true, Ordering::Relaxed);
    let small = allocs_of_open_loop_run(SMALL);
    let large = allocs_of_open_loop_run(LARGE);
    COUNTING.store(false, Ordering::Relaxed);

    let marginal = (large.saturating_sub(small)) as f64 / (LARGE - SMALL) as f64;
    assert!(
        marginal <= ALLOCS_PER_WORKER_BUDGET,
        "open-loop marginal cost {marginal:.1} allocs/worker exceeds the \
         {ALLOCS_PER_WORKER_BUDGET} budget ({small} allocs at {SMALL} workers, \
         {large} at {LARGE})"
    );
}

#[test]
fn ten_k_worker_trace_replay_stays_within_budget() {
    let _window = COUNT_WINDOW.lock().unwrap();
    // The ISSUE-4 acceptance configuration: a 10240-worker headless
    // cluster driven by one shared (unlabeled) arrival trace through a
    // `TraceSource`.  The budget is asserted on the marginal cost between
    // 2048 and 10240 workers so fixed per-run overhead cancels out.
    const SMALL: usize = 2048;
    const LARGE: usize = 10240;
    let make_source = |workers: usize| {
        // Built outside any counting window; `unlabeled` drops the labels
        // so slicing clones are allocation-free.
        let plan = WorkloadPlan::random_n(workers * 2, 0xC1A5);
        TraceSource::new(
            flowcon_workload::BoundTrace::from_plan(plan).unlabeled(),
            workers,
        )
    };
    let small_source = make_source(SMALL);
    let large_source = make_source(LARGE);

    base(SMALL)
        .plan(WorkloadPlan::random_n(SMALL * 2, 0xC1A5))
        .build()
        .run(); // warm-up

    let measure = |workers: usize, source: &TraceSource| {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let run = base(workers).source(source).build().run();
        assert_eq!(run.completed_jobs(), workers * 2, "jobs conserved");
        ALLOCATIONS.load(Ordering::Relaxed) - before
    };
    COUNTING.store(true, Ordering::Relaxed);
    let small = measure(SMALL, &small_source);
    let large = measure(LARGE, &large_source);
    COUNTING.store(false, Ordering::Relaxed);

    let marginal = (large.saturating_sub(small)) as f64 / (LARGE - SMALL) as f64;
    assert!(
        marginal <= ALLOCS_PER_WORKER_BUDGET,
        "10k trace replay costs {marginal:.1} allocs/worker, budget is \
         {ALLOCS_PER_WORKER_BUDGET} ({small} allocs at {SMALL} workers, {large} at {LARGE})"
    );
}

#[test]
fn headless_memory_is_o_completions() {
    let _window = COUNT_WINDOW.lock().unwrap();
    // 512 workers × 2 jobs: the retained result is one `Completion` (3
    // words) per job plus one `usize` placement per job — no series, no
    // labels.  This asserts the *shape*, the budget test above asserts the
    // churn.
    let workers = 512;
    let plan = WorkloadPlan::random_n(workers * 2, 9);
    let run = base(workers).plan(plan).build().run();
    assert_eq!(run.workers.len(), workers);
    assert_eq!(run.placements.len(), workers * 2);
    let retained: usize = run.workers.iter().map(|w| w.output.completions.len()).sum();
    assert_eq!(retained, workers * 2);
}

/// Process-wide allocations of one sequential FIFO scheduler run: the
/// engine's per-quantum decision loop recycles its view buffers and each
/// node recycles its measurement/waterfill scratch, so the cost must
/// scale with the *jobs* (admissions, decisions, completions — plus the
/// labeled plan built inside the window), not with the number of quantum
/// barriers crossed on the way.
fn allocs_of_sched_run(jobs: usize) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = ClusterSession::builder()
        .nodes(4, NodeConfig::default().with_seed(0xF10C))
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .plan(WorkloadPlan::random_n(jobs, 0xC1A5))
        .scheduler(SchedPolicyKind::Fifo)
        .sequential(true)
        .build()
        .run();
    assert_eq!(out.completed_jobs(), jobs, "jobs conserved");
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_sketch_inserts_are_allocation_free() {
    let _window = COUNT_WINDOW.lock().unwrap();
    // The ISSUE-8 acceptance invariant: once a sketch has seen the value
    // range of its workload, `insert` is a key computation plus a counter
    // bump — zero heap traffic.  This is what lets every worker feed its
    // `SojournStats` on the open-loop hot path without denting the
    // allocs/worker budgets above.
    let mut sketch = flowcon_metrics::sketch::QuantileSketch::new();
    for i in 1..=4096u32 {
        sketch.insert(f64::from(i) * 0.25); // warm the bucket range
    }
    COUNTING.store(true, Ordering::Relaxed);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 1..=4096u32 {
        sketch.insert(f64::from(i) * 0.25);
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    COUNTING.store(false, Ordering::Relaxed);
    assert_eq!(sketch.count(), 8192);
    assert_eq!(
        allocs, 0,
        "warm sketch inserts allocated {allocs} times over 4096 samples"
    );
}

/// Like [`allocs_of_sched_run`], but with an explicit tracer `T` threaded
/// through `run_traced` (the counter stops before the recorder is read).
fn allocs_of_traced_sched_run<T: flowcon_sim::trace::Tracer + Send>(
    jobs: usize,
    tracer: T,
) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let (out, tracer) = ClusterSession::builder()
        .nodes(4, NodeConfig::default().with_seed(0xF10C))
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .plan(WorkloadPlan::random_n(jobs, 0xC1A5))
        .scheduler(SchedPolicyKind::Fifo)
        .sequential(true)
        .tracer(tracer)
        .build()
        .run_traced();
    assert_eq!(out.completed_jobs(), jobs, "jobs conserved");
    (ALLOCATIONS.load(Ordering::Relaxed) - before, tracer)
}

#[test]
fn noop_tracer_is_allocation_neutral_on_the_sched_path() {
    let _window = COUNT_WINDOW.lock().unwrap();
    // `NoopTracer` is the *default* tracer type, so `.tracer(NoopTracer)`
    // selects the very same monomorphization as the plain `.run()` the
    // budget tests above gate — the two must allocate identically, which
    // is what "the tracing layer compiles away" means in numbers.  The
    // dense headless budget (`DENSE_ALLOCS_PER_WORKER_BUDGET`) holds for
    // the same reason: its worker path threads the same `NoopTracer`.
    const JOBS: usize = 64;
    allocs_of_sched_run(JOBS); // warm-up (OnceLock, thread-locals)

    COUNTING.store(true, Ordering::Relaxed);
    let plain = allocs_of_sched_run(JOBS);
    let (noop, _) = allocs_of_traced_sched_run(JOBS, flowcon_sim::trace::NoopTracer);
    COUNTING.store(false, Ordering::Relaxed);

    assert_eq!(
        plain, noop,
        "an explicit NoopTracer must cost exactly what the untraced run costs"
    );
}

#[test]
fn flight_recorder_costs_only_its_preallocation() {
    let _window = COUNT_WINDOW.lock().unwrap();
    // Recording into the ring is plain stores into preallocated storage:
    // the whole traced run may add only the recorder's own ring, the
    // per-node forked rings (4 nodes here), and nothing per event.
    const JOBS: usize = 64;
    allocs_of_sched_run(JOBS); // warm-up (OnceLock, thread-locals)

    COUNTING.store(true, Ordering::Relaxed);
    let plain = allocs_of_sched_run(JOBS);
    let (traced, recorder) = allocs_of_traced_sched_run(
        JOBS,
        flowcon_sim::trace::FlightRecorder::with_capacity(1 << 16),
    );
    COUNTING.store(false, Ordering::Relaxed);

    assert!(!recorder.is_empty(), "the run must actually be recorded");
    assert_eq!(recorder.dropped(), 0, "capacity covers the whole run");
    let extra = traced.saturating_sub(plain);
    assert!(
        extra <= 16,
        "flight recording added {extra} allocations — recording must cost \
         only the preallocated rings, never per-event heap traffic"
    );
}

#[test]
fn sched_engine_marginal_cost_scales_with_jobs_not_barriers() {
    let _window = COUNT_WINDOW.lock().unwrap();
    const SMALL: usize = 32;
    const LARGE: usize = 128;

    allocs_of_sched_run(SMALL); // warm-up (OnceLock, thread-locals)

    COUNTING.store(true, Ordering::Relaxed);
    let small = allocs_of_sched_run(SMALL);
    let large = allocs_of_sched_run(LARGE);
    COUNTING.store(false, Ordering::Relaxed);

    let marginal = (large.saturating_sub(small)) as f64 / (LARGE - SMALL) as f64;
    eprintln!("sched marginal cost: {marginal:.2} allocs/job");
    assert!(
        marginal <= 30.0,
        "scheduler marginal cost {marginal:.1} allocs/job is out of scale \
         ({small} allocs at {SMALL} jobs, {large} at {LARGE}) — the warm \
         per-quantum loop is allocating"
    );
}
