//! Cluster-scale properties of the sharded executor.
//!
//! The bounded pool must change *how* worker simulations are driven, never
//! *what* they compute: job conservation and makespan monotonicity must
//! hold at hundreds of workers, and the sharded path must be bit-identical
//! to a naive thread-per-worker reference loop (kept here as a test-only
//! helper since `Manager::run_spawn_per_worker` was removed).

use flowcon_cluster::{ClusterSession, PolicyKind, Spread};
use flowcon_container::image::shared_dl_defaults;
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::recorder::FullRecorder;
use flowcon_core::session::Session;
use flowcon_core::worker::RunResult;
use flowcon_dl::workload::{JobRequest, WorkloadPlan};

fn node(seed: u64) -> NodeConfig {
    NodeConfig::default().with_seed(seed)
}

/// Run a full-observability cluster session and return per-worker results
/// plus the placement log.
fn run_full(
    workers: usize,
    seed: u64,
    policy: PolicyKind,
    plan: &WorkloadPlan,
) -> (Vec<RunResult>, Vec<usize>) {
    let out = ClusterSession::builder()
        .nodes(workers, node(seed))
        .policy(policy)
        .plan(plan.clone())
        .recorder(|_| FullRecorder::new())
        .build()
        .run();
    (
        out.workers.into_iter().map(RunResult::from).collect(),
        out.placements,
    )
}

/// The legacy execution path, reconstructed from public APIs: one OS
/// thread per worker, round-robin placement, the same per-worker seed
/// stride the builder applies.  This is the reference the sharded
/// executor is bit-compared against — don't "optimize" it.
fn spawn_per_worker(
    workers: usize,
    seed: u64,
    policy: PolicyKind,
    plan: &WorkloadPlan,
) -> Vec<RunResult> {
    let template = node(seed);
    let nodes: Vec<NodeConfig> = (0..workers)
        .map(|i| template.with_seed(template.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
        .collect();
    // Round-robin placement of the arrival-ordered plan.
    let mut per_worker: Vec<Vec<JobRequest>> = vec![Vec::new(); workers];
    for (i, job) in plan.jobs.iter().cloned().enumerate() {
        per_worker[i % workers].push(job);
    }
    let images = shared_dl_defaults();
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .zip(&nodes)
            .map(|(jobs, &node)| {
                let images = images.clone();
                scope.spawn(move || {
                    let result = Session::builder()
                        .node(node)
                        .plan(WorkloadPlan::new(jobs))
                        .policy_box(policy.build())
                        .images(images)
                        .build()
                        .run();
                    RunResult::from(result)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker simulation panicked"))
            .collect()
    })
}

#[test]
fn jobs_are_conserved_at_256_workers() {
    let plan = WorkloadPlan::random_n(512, 7);
    let (workers, placements) =
        run_full(256, 7, PolicyKind::FlowCon(FlowConConfig::default()), &plan);

    // Every job placed exactly once and completed exactly once.
    assert_eq!(placements.len(), 512);
    let completed: usize = workers.iter().map(|w| w.summary.completions.len()).sum();
    assert_eq!(completed, 512);
    for job in &plan.jobs {
        assert!(
            workers
                .iter()
                .find_map(|w| w.summary.completion_of(&job.label))
                .is_some(),
            "job {} lost by the sharded executor",
            job.label
        );
    }
    // Round-robin over 256 workers: exactly 2 jobs per worker.
    for w in 0..256 {
        let assigned = placements.iter().filter(|&&t| t == w).count();
        assert_eq!(assigned, 2, "worker {w} got {assigned} jobs");
    }
    // All workers' completions are clean exits.
    assert!(workers
        .iter()
        .flat_map(|w| &w.summary.completions)
        .all(|c| c.exit_code == 0));
}

#[test]
fn makespan_is_monotone_in_worker_count() {
    let plan = WorkloadPlan::random_n(512, 7);
    let makespan = |workers: usize| {
        ClusterSession::builder()
            .nodes(workers, node(7))
            .placement(Spread)
            .plan(plan.clone())
            .build()
            .run()
            .makespan_secs()
    };
    let m16 = makespan(16);
    let m64 = makespan(64);
    let m256 = makespan(256);
    assert!(
        m64 < m16,
        "64 workers ({m64:.0}s) should beat 16 ({m16:.0}s)"
    );
    assert!(
        m256 < m64,
        "256 workers ({m256:.0}s) should beat 64 ({m64:.0}s)"
    );
}

#[test]
fn sharded_executor_is_bit_identical_to_spawn_per_worker() {
    let plan = WorkloadPlan::random_n(24, 0xF10C);
    let policy = PolicyKind::FlowCon(FlowConConfig::default());
    let spawned = spawn_per_worker(8, 0xF10C, policy, &plan);
    let (sharded, placements) = run_full(8, 0xF10C, policy, &plan);

    // The reference loop places round-robin by construction; the builder's
    // default strategy must agree.
    for (i, &target) in placements.iter().enumerate() {
        assert_eq!(target, i % 8, "placement diverged at job {i}");
    }
    assert_eq!(spawned.len(), sharded.len());
    for (i, (a, b)) in spawned.iter().zip(&sharded).enumerate() {
        assert_eq!(
            a.summary.completions, b.summary.completions,
            "worker {i} completions diverge"
        );
        assert_eq!(
            a.events_processed, b.events_processed,
            "worker {i} event counts diverge"
        );
        assert_eq!(
            a.summary.makespan_secs().to_bits(),
            b.summary.makespan_secs().to_bits(),
            "worker {i} makespan diverges at the bit level"
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let plan = WorkloadPlan::random_n(12, 3);
    let run = || run_full(4, 3, PolicyKind::FlowCon(FlowConConfig::default()), &plan);
    let (a_workers, a_placements) = run();
    let (b_workers, b_placements) = run();
    assert_eq!(a_placements, b_placements);
    for (a, b) in a_workers.iter().zip(&b_workers) {
        assert_eq!(a.summary.completions, b.summary.completions);
        assert_eq!(
            a.summary.makespan_secs().to_bits(),
            b.summary.makespan_secs().to_bits()
        );
    }
}
