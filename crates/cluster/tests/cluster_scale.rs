//! Cluster-scale properties of the sharded executor.
//!
//! The bounded pool must change *how* worker simulations are driven, never
//! *what* they compute: job conservation and makespan monotonicity must
//! hold at hundreds of workers, and the sharded path must be bit-identical
//! to the legacy thread-per-worker path.

use flowcon_cluster::{Manager, PolicyKind, RoundRobin, Spread};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;

fn node(seed: u64) -> NodeConfig {
    NodeConfig::default().with_seed(seed)
}

#[test]
fn jobs_are_conserved_at_256_workers() {
    let plan = WorkloadPlan::random_n(512, 7);
    let result = Manager::new(
        256,
        node(7),
        PolicyKind::FlowCon(FlowConConfig::default()),
        RoundRobin::default(),
    )
    .run_owned(plan.clone());

    // Every job placed exactly once and completed exactly once.
    assert_eq!(result.assignments.len(), 512);
    assert_eq!(result.completed_jobs(), 512);
    for job in &plan.jobs {
        assert!(
            result.completion_of(&job.label).is_some(),
            "job {} lost by the sharded executor",
            job.label
        );
    }
    // Round-robin over 256 workers: exactly 2 jobs per worker.
    for w in 0..256 {
        let assigned = result.assignments.iter().filter(|&&(_, t)| t == w).count();
        assert_eq!(assigned, 2, "worker {w} got {assigned} jobs");
    }
    // All workers' completions are clean exits.
    assert!(result
        .workers
        .iter()
        .flat_map(|w| &w.summary.completions)
        .all(|c| c.exit_code == 0));
}

#[test]
fn makespan_is_monotone_in_worker_count() {
    let plan = WorkloadPlan::random_n(512, 7);
    let makespan = |workers: usize| {
        Manager::new(workers, node(7), PolicyKind::Baseline, Spread)
            .run_owned(plan.clone())
            .makespan_secs()
    };
    let m16 = makespan(16);
    let m64 = makespan(64);
    let m256 = makespan(256);
    assert!(
        m64 < m16,
        "64 workers ({m64:.0}s) should beat 16 ({m16:.0}s)"
    );
    assert!(
        m256 < m64,
        "256 workers ({m256:.0}s) should beat 64 ({m64:.0}s)"
    );
}

#[test]
fn sharded_executor_is_bit_identical_to_spawn_per_worker() {
    let plan = WorkloadPlan::random_n(24, 0xF10C);
    let build = || {
        Manager::new(
            8,
            node(0xF10C),
            PolicyKind::FlowCon(FlowConConfig::default()),
            RoundRobin::default(),
        )
    };
    #[allow(deprecated)] // the legacy path is exactly what we compare against
    let spawned = build().run_spawn_per_worker(&plan);
    let sharded = build().run(&plan);

    assert_eq!(spawned.assignments, sharded.assignments);
    assert_eq!(spawned.workers.len(), sharded.workers.len());
    for (i, (a, b)) in spawned
        .workers
        .iter()
        .zip(&sharded.workers)
        .collect::<Vec<_>>()
        .into_iter()
        .enumerate()
    {
        assert_eq!(
            a.summary.completions, b.summary.completions,
            "worker {i} completions diverge"
        );
        assert_eq!(
            a.events_processed, b.events_processed,
            "worker {i} event counts diverge"
        );
        assert_eq!(
            a.summary.makespan_secs().to_bits(),
            b.summary.makespan_secs().to_bits(),
            "worker {i} makespan diverges at the bit level"
        );
    }
    assert_eq!(
        spawned.makespan_secs().to_bits(),
        sharded.makespan_secs().to_bits()
    );
}

#[test]
fn run_owned_matches_borrowed_run() {
    let plan = WorkloadPlan::random_n(12, 3);
    let build = || {
        Manager::new(
            4,
            node(3),
            PolicyKind::FlowCon(FlowConConfig::default()),
            RoundRobin::default(),
        )
    };
    let borrowed = build().run(&plan);
    let owned = build().run_owned(plan);
    assert_eq!(borrowed.assignments, owned.assignments);
    assert_eq!(borrowed.completed_jobs(), owned.completed_jobs());
    assert_eq!(
        borrowed.makespan_secs().to_bits(),
        owned.makespan_secs().to_bits()
    );
}
