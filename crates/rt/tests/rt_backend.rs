//! Integration tests for the wall-clock backend.
//!
//! # Flakiness policy
//!
//! These tests run real OS threads on shared CI runners, so every timing
//! assertion follows three rules:
//!
//! 1. **Ratios and coarse bounds, never tight absolute milliseconds** — a
//!    bound is either a large multiple of the relevant period (e.g. "well
//!    under one 400 ms refill period" asserts < 200 ms against an expected
//!    ~0 ms) or a ratio with ≥ 4× headroom.
//! 2. **Tiny workloads** — fractions of a CPU-second of spin per job, so
//!    an oversubscribed runner stretches wall time without changing any
//!    asserted *logical* outcome (completion sets, thread accounting,
//!    ledger decisions).
//! 3. **One shared workload helper** — [`rt_test_workload`] is the single
//!    source of job sizing; shrinking it to fix one flaky test fixes them
//!    all identically.
//!
//! Logical invariants (set equality, join accounting, ledger rejection,
//! the no-sleep grep) carry the correctness weight; timing asserts only
//! guard against order-of-magnitude regressions like a shutdown path
//! sitting out a full refill period.

use std::time::{Duration, Instant};

use flowcon_core::config::NodeConfig;
use flowcon_core::policy::FairSharePolicy;
use flowcon_core::session::Session;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_rt::governor::RefillMath;
use flowcon_rt::{RtChaos, RtConfig, RtOutcome, RtRuntime, RtSessionBuilder};
use proptest::prelude::*;

/// The one shared tiny workload: `jobs` seeded jobs compressed to
/// CI-scale wall time by a high dilation.  All integration tests size
/// their work through here (see the flakiness policy above).
fn rt_test_workload(jobs: usize, seed: u64) -> RtOutcome {
    rt_test_workload_with(jobs, seed, None)
}

fn rt_test_workload_with(jobs: usize, seed: u64, chaos: Option<RtChaos>) -> RtOutcome {
    let spec = Session::builder()
        .node(NodeConfig::default().with_seed(seed))
        .plan(WorkloadPlan::random_n(jobs, seed))
        .into_spec();
    let mut builder = RtSessionBuilder::from_spec(spec).config(RtConfig {
        dilation: 2000.0,
        ..RtConfig::default()
    });
    if let Some(chaos) = chaos {
        builder = builder.chaos(chaos);
    }
    builder.build().run_outcome()
}

/// Regression (ISSUE 10 satellite): the governor used to `thread::sleep`
/// its full refill period, so even a zero-job run couldn't shut down
/// faster than one period.  With the condvar shutdown signal, teardown
/// must complete in *well under* one (deliberately huge) period.
#[test]
fn zero_job_run_shuts_down_well_under_one_refill_period() {
    let config = RtConfig {
        refill_period: Duration::from_millis(400),
        ..RtConfig::default()
    };
    let started = Instant::now();
    let outcome = RtRuntime::new(config, Box::new(FairSharePolicy::new())).run_outcome(vec![]);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(200),
        "shutdown took {elapsed:?}, at least half a 400 ms refill period — \
         the governor is sleeping through shutdown again"
    );
    assert_eq!(outcome.threads_spawned, 1, "the governor did spawn");
    assert_eq!(outcome.threads_joined, 1);
}

/// The push-based coordination invariant, grep-enforced: no
/// `thread::sleep` anywhere in this crate's sources.  Blocking waits are
/// condvars (woken by deposits / shutdown) or channel receives (woken by
/// completions); a sleep would reintroduce polling latency unbounded by
/// any signal.
#[test]
fn no_thread_sleep_in_crate_sources() {
    let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0;
    for entry in std::fs::read_dir(&src).expect("src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).expect("readable source");
            for (lineno, line) in text.lines().enumerate() {
                let code = line.split("//").next().unwrap_or("");
                assert!(
                    !code.contains("thread::sleep") && !code.contains("sleep("),
                    "{}:{} contains a sleep call: {line:?}",
                    path.display(),
                    lineno + 1
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 4,
        "expected to scan the crate sources, saw {checked}"
    );
}

/// Every spawned thread is joined before the runtime returns — no leaks,
/// asserted via the join-handle accounting the runtime itself keeps.
#[test]
fn shutdown_joins_every_spawned_thread() {
    let jobs = 3;
    let outcome = rt_test_workload(jobs, 21);
    assert_eq!(outcome.summary.completions.len(), jobs);
    assert_eq!(
        outcome.threads_spawned,
        outcome.threads_joined,
        "leaked {} thread(s)",
        outcome.threads_spawned - outcome.threads_joined
    );
    assert_eq!(
        outcome.threads_spawned,
        jobs as u64 + 1,
        "one thread per container plus the governor"
    );
    assert_eq!(outcome.completions_rejected, 0);
}

/// A straggler run still completes every job (slower, never fewer).
#[test]
fn straggler_chaos_preserves_the_completion_set() {
    let jobs = 3;
    let outcome = rt_test_workload_with(jobs, 33, Some(RtChaos::Straggler { factor: 0.25 }));
    assert_eq!(outcome.summary.completions.len(), jobs);
    assert_eq!(outcome.threads_spawned, outcome.threads_joined);
}

/// A churn kill/restart is physically real — a thread dies and a new one
/// resumes the job — and the completion set still holds.
#[test]
fn churn_chaos_kills_restarts_and_still_completes_every_job() {
    let jobs = 3;
    let outcome = rt_test_workload_with(
        jobs,
        44,
        Some(RtChaos::Churn {
            at: Duration::from_millis(10),
            down: Duration::from_millis(10),
        }),
    );
    assert_eq!(outcome.summary.completions.len(), jobs);
    assert_eq!(outcome.chaos_kills, 1, "the kill happened");
    assert!(
        outcome.chaos_kills >= outcome.chaos_restarts,
        "restarts never exceed kills"
    );
    assert_eq!(
        outcome.threads_spawned, outcome.threads_joined,
        "killed and relaunched threads are all joined"
    );
    assert_eq!(outcome.completions_rejected, 0);
}

proptest! {
    /// Refill conservation: across an *arbitrary* sequence of rate
    /// reconfigurations, the whole-microsecond deposits stay within one
    /// microsecond of the exact fractional total — forever, because the
    /// carry never discards remainder.
    #[test]
    fn refill_conserves_rate_across_arbitrary_reconfigures(
        segments in prop::collection::vec((0.0f64..8.0, 1usize..40), 1..20),
        period_us in 500u64..20_000,
    ) {
        let period = Duration::from_micros(period_us);
        let mut math = RefillMath::new();
        let mut deposited = 0u64;
        let mut exact = 0.0f64;
        for (rate, periods) in segments {
            for _ in 0..periods {
                deposited += math.deposit_for(rate, period);
                exact += rate * period.as_secs_f64() * 1e6;
                prop_assert!(
                    (0.0..1.0).contains(&math.carry_us()),
                    "carry {} left [0,1)", math.carry_us()
                );
            }
        }
        let drift = deposited as f64 - exact;
        prop_assert!(
            drift.abs() < 1.0,
            "deposits drifted {drift} µs from exact over the sequence"
        );
    }

    /// Refill monotonicity: from identical carry state, a higher rate
    /// never deposits less for the same period.
    #[test]
    fn refill_is_monotone_in_rate(
        lo in 0.0f64..8.0,
        delta in 0.0f64..4.0,
        carry in 0.0f64..0.999,
        period_us in 500u64..20_000,
    ) {
        let period = Duration::from_micros(period_us);
        let mut a = RefillMath::new();
        let mut b = RefillMath::new();
        // Drive both to the same carry state first.
        let prime = carry / (period.as_secs_f64() * 1e6);
        a.deposit_for(prime, period);
        b.deposit_for(prime, period);
        let low = a.deposit_for(lo, period);
        let high = b.deposit_for(lo + delta, period);
        prop_assert!(
            high >= low,
            "rate {} deposited {high} < rate {} deposited {low}",
            lo + delta, lo
        );
    }
}
