//! The real-thread runtime.
//!
//! Topology (one box per thread):
//!
//! ```text
//!  +--------------+   completions    +-------------+
//!  | container #1 |----------------->|             |
//!  +--------------+    (channel)     |             |
//!  +--------------+                  | coordinator |  measure/Alg.1/update
//!  | container #2 |----------------->|  (executor  |------------+
//!  +--------------+                  |  +listener) |            |
//!        ^  tokens                   +-------------+            v
//!  +--------------+     shares (atomics)                 rate cells
//!  |   governor   |<---------------------------------------------+
//!  +--------------+
//! ```
//!
//! Containers burn CPU in quanta gated by their token bucket; the governor
//! refills buckets at the water-filled share of node capacity; the
//! coordinator samples evaluation functions, feeds the policy (FlowCon, NA,
//! ...) and applies the returned limits — the exact worker-side loop of the
//! paper, on wall-clock time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use flowcon_container::{ContainerId, Workload, WorkloadStatus};
use flowcon_core::metric::{progress_score, GrowthMeasurement};
use flowcon_core::policy::ResourcePolicy;
use flowcon_dl::TrainingJob;
use flowcon_metrics::summary::{CompletionRecord, RunSummary};
use flowcon_sim::alloc::{waterfill, AllocRequest};
use flowcon_sim::time::SimTime;

use crate::governor::{AtomicF64, TokenBucket};
use crate::kernel::spin_for;

/// The governor's refill targets: one `(bucket, rate)` pair per container.
type GovernorTargets = Arc<Mutex<Vec<(Arc<TokenBucket>, Arc<AtomicF64>)>>>;

/// Runtime parameters.
#[derive(Debug, Clone, Copy)]
pub struct RtConfig {
    /// Node CPU capacity in cores distributed by the governor.
    pub capacity_cores: f64,
    /// Governor refill period.
    pub refill_period: Duration,
    /// Compute quantum per bucket withdrawal.
    pub quantum: Duration,
    /// Fallback executor tick when the policy does not set one.
    pub default_tick: Duration,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            capacity_cores: 2.0,
            refill_period: Duration::from_millis(5),
            quantum: Duration::from_millis(2),
            default_tick: Duration::from_millis(100),
        }
    }
}

/// One job submission for the real-thread runtime.
#[derive(Debug, Clone)]
pub struct RtJob {
    /// The training job (size it small: wall time is real).
    pub job: TrainingJob,
    /// Delay after runtime start before the job is submitted.
    pub arrival: Duration,
}

struct RtContainer {
    id: ContainerId,
    label: String,
    job: Arc<Mutex<TrainingJob>>,
    bucket: Arc<TokenBucket>,
    /// CPU-seconds consumed (written by the container thread).
    cpu_used: Arc<AtomicF64>,
    /// Current granted rate in cores (read by the governor).
    rate: Arc<AtomicF64>,
    /// Policy-assigned limit (weight), 1.0 = unshaped.
    limit: f64,
    demand: f64,
    arrival_at: Duration,
    handle: Option<thread::JoinHandle<()>>,
    // Monitor baseline.
    last_eval: Option<f64>,
    last_cpu: f64,
    last_tick: Duration,
}

/// The runtime: spawn with a policy, feed jobs, collect a [`RunSummary`].
pub struct RtRuntime {
    config: RtConfig,
    policy: Box<dyn ResourcePolicy>,
}

impl RtRuntime {
    /// Build a runtime around a policy.
    pub fn new(config: RtConfig, policy: Box<dyn ResourcePolicy>) -> Self {
        RtRuntime { config, policy }
    }

    /// Run the jobs to completion and summarize.
    pub fn run(mut self, jobs: Vec<RtJob>) -> RunSummary {
        let mut summary = RunSummary::new(self.policy.name());
        if jobs.is_empty() {
            return summary;
        }
        let start = Instant::now();
        let (done_tx, done_rx) = bounded::<ContainerId>(jobs.len());
        let shutdown = Arc::new(AtomicBool::new(false));

        // Pending arrivals, earliest first.
        let mut pending: Vec<RtJob> = jobs;
        pending.sort_by_key(|j| j.arrival);
        pending.reverse(); // pop() takes the earliest

        let mut active: BTreeMap<ContainerId, RtContainer> = BTreeMap::new();
        let mut next_id: u32 = 0;

        // Governor thread: refill every bucket at its current rate.
        let governor_targets: GovernorTargets = Arc::new(Mutex::new(Vec::new()));
        let governor = {
            let targets = Arc::clone(&governor_targets);
            let shutdown = Arc::clone(&shutdown);
            let period = self.config.refill_period;
            thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    thread::sleep(period);
                    let period_us = period.as_micros() as f64;
                    for (bucket, rate) in targets.lock().iter() {
                        let deposit = (rate.load() * period_us) as u64;
                        if deposit > 0 {
                            bucket.deposit(deposit);
                        }
                    }
                }
            })
        };

        let mut tick: Duration = self
            .policy
            .initial_interval()
            .map(|d| Duration::from_secs_f64(d.as_secs_f64()))
            .unwrap_or(self.config.default_tick);
        let mut next_tick = start + tick;
        let mut algorithm_runs = 0u64;
        let mut update_calls = 0u64;

        loop {
            // 1. Start any due arrivals.
            let now = start.elapsed();
            let mut pool_changed = false;
            while pending.last().is_some_and(|j| j.arrival <= now) {
                let rt_job = pending.pop().expect("just checked");
                let container = self.launch(
                    ContainerId::from_raw(next_id),
                    rt_job,
                    now,
                    &done_tx,
                    &governor_targets,
                    &shutdown,
                );
                next_id += 1;
                active.insert(container.id, container);
                pool_changed = true;
            }

            if pool_changed {
                let ids: Vec<ContainerId> = active.keys().copied().collect();
                if self.policy.on_pool_change(sim_now(now), &ids) {
                    self.reconfigure(
                        now,
                        &mut active,
                        &mut algorithm_runs,
                        &mut update_calls,
                        &mut tick,
                    );
                    next_tick = start + now + tick;
                }
                self.reshare(&active);
            }

            if pending.is_empty() && active.is_empty() {
                break;
            }

            // 2. Wait for a completion, the next tick, or the next arrival.
            let mut deadline = next_tick;
            if let Some(j) = pending.last() {
                deadline = deadline.min(start + j.arrival);
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            match done_rx.recv_timeout(timeout) {
                Ok(id) => {
                    let now = start.elapsed();
                    if let Some(mut c) = active.remove(&id) {
                        if let Some(h) = c.handle.take() {
                            let _ = h.join();
                        }
                        let status = c.job.lock().status();
                        summary.completions.push(CompletionRecord {
                            label: c.label.clone(),
                            arrival: sim_now(c.arrival_at),
                            finished: sim_now(now),
                            exit_code: match status {
                                WorkloadStatus::Failed(code) => code,
                                _ => 0,
                            },
                        });
                        governor_targets
                            .lock()
                            .retain(|(b, _)| !Arc::ptr_eq(b, &c.bucket));
                    }
                    let ids: Vec<ContainerId> = active.keys().copied().collect();
                    if self.policy.on_pool_change(sim_now(now), &ids) {
                        self.reconfigure(
                            now,
                            &mut active,
                            &mut algorithm_runs,
                            &mut update_calls,
                            &mut tick,
                        );
                        next_tick = start + now + tick;
                    }
                    self.reshare(&active);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= next_tick {
                        let now = start.elapsed();
                        self.reconfigure(
                            now,
                            &mut active,
                            &mut algorithm_runs,
                            &mut update_calls,
                            &mut tick,
                        );
                        self.reshare(&active);
                        next_tick = Instant::now() + tick;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        shutdown.store(true, Ordering::Relaxed);
        let _ = governor.join();
        summary.algorithm_runs = algorithm_runs;
        summary.update_calls = update_calls;
        summary
    }

    /// Spawn one container thread.
    fn launch(
        &self,
        id: ContainerId,
        rt_job: RtJob,
        now: Duration,
        done_tx: &Sender<ContainerId>,
        governor_targets: &GovernorTargets,
        shutdown: &Arc<AtomicBool>,
    ) -> RtContainer {
        let label = Workload::label(&rt_job.job).to_string();
        let demand = Workload::demand(&rt_job.job);
        let burst_us = (self.config.quantum.as_micros() as u64).saturating_mul(4);
        let bucket = TokenBucket::new(burst_us.max(1_000));
        let job = Arc::new(Mutex::new(rt_job.job));
        let cpu_used = Arc::new(AtomicF64::new(0.0));
        let rate = Arc::new(AtomicF64::new(0.0));
        governor_targets
            .lock()
            .push((Arc::clone(&bucket), Arc::clone(&rate)));

        let handle = {
            let bucket = Arc::clone(&bucket);
            let job = Arc::clone(&job);
            let cpu_used = Arc::clone(&cpu_used);
            let done_tx = done_tx.clone();
            let shutdown = Arc::clone(shutdown);
            let quantum = self.config.quantum;
            let quantum_us = quantum.as_micros() as u64;
            let start_offset = now;
            thread::spawn(move || {
                let started = Instant::now();
                loop {
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    if !bucket.withdraw_timeout(quantum_us, Duration::from_millis(200)) {
                        // Either shut down or starved this round; re-check.
                        continue;
                    }
                    spin_for(quantum);
                    let finished = {
                        let mut j = job.lock();
                        let virtual_now = sim_now(start_offset + started.elapsed());
                        j.advance(virtual_now, quantum.as_secs_f64());
                        cpu_used.fetch_add(quantum.as_secs_f64());
                        j.status() != WorkloadStatus::Running
                    };
                    if finished {
                        let _ = done_tx.send(
                            // The coordinator resolves the id from its map;
                            // sending the raw id is enough.
                            id,
                        );
                        return;
                    }
                }
            })
        };

        RtContainer {
            id,
            label,
            job,
            bucket,
            cpu_used,
            rate,
            limit: 1.0,
            demand,
            arrival_at: now,
            handle: Some(handle),
            last_eval: None,
            last_cpu: 0.0,
            last_tick: now,
        }
    }

    /// Measure + run the policy + apply limits (the Executor's job).
    fn reconfigure(
        &mut self,
        now: Duration,
        active: &mut BTreeMap<ContainerId, RtContainer>,
        algorithm_runs: &mut u64,
        update_calls: &mut u64,
        tick: &mut Duration,
    ) {
        let mut measures = Vec::with_capacity(active.len());
        for c in active.values_mut() {
            let eval_now = c.job.lock().eval(sim_now(now));
            let cpu_now = c.cpu_used.load();
            let dt = (now - c.last_tick).as_secs_f64();
            let growth = if dt > 0.01 {
                let avg_cpu = (cpu_now - c.last_cpu) / dt;
                let p = match (eval_now, c.last_eval) {
                    (Some(e), Some(prev)) => progress_score(e, prev, dt),
                    _ => None,
                };
                c.last_tick = now;
                c.last_eval = eval_now.or(c.last_eval);
                c.last_cpu = cpu_now;
                p.map(|p| (p, avg_cpu))
            } else {
                None
            };
            measures.push(GrowthMeasurement {
                id: c.id,
                progress: growth.map(|(p, _)| p),
                avg_usage: flowcon_sim::ResourceVec::cpu(growth.map_or(0.0, |(_, a)| a)),
                cpu_limit: c.limit,
            });
        }
        let decision = self.policy.reconfigure(sim_now(now), &measures);
        *algorithm_runs += 1;
        for (id, limit) in decision.updates {
            if let Some(c) = active.get_mut(&id) {
                c.limit = limit;
                *update_calls += 1;
            }
        }
        if let Some(next) = decision.next_interval {
            *tick = Duration::from_secs_f64(next.as_secs_f64());
        }
    }

    /// Recompute governor rates from limits/demands (water-filled weights,
    /// the same soft-limit semantics as the simulation).
    fn reshare(&self, active: &BTreeMap<ContainerId, RtContainer>) {
        if active.is_empty() {
            return;
        }
        let requests: Vec<AllocRequest> = active
            .values()
            .map(|c| AllocRequest {
                limit: 1.0,
                demand: c.demand,
                weight: c.limit.max(1e-6),
            })
            .collect();
        let alloc = waterfill(self.config.capacity_cores, &requests);
        for (c, &share) in active.values().zip(&alloc.rates) {
            c.rate.store(share);
        }
    }
}

/// Wall-clock elapsed time as a simulation timestamp for the policy API.
fn sim_now(elapsed: Duration) -> SimTime {
    SimTime::from_secs_f64(elapsed.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_core::config::FlowConConfig;
    use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
    use flowcon_dl::models::{ModelId, ModelSpec};
    use flowcon_sim::rng::SimRng;
    use flowcon_sim::time::SimDuration;

    /// A small job: `work` CPU-seconds of a GRU-shaped model.
    fn small_job(label: &str, work: f64, demand: f64, seed: u64) -> TrainingJob {
        let mut spec = ModelSpec::of(ModelId::Gru);
        spec.total_work = work;
        spec.demand = demand;
        let mut rng = SimRng::new(seed);
        TrainingJob::with_label(spec, label, &mut rng)
    }

    #[test]
    fn jobs_complete_under_baseline() {
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FairSharePolicy::new()));
        let jobs = vec![
            RtJob {
                job: small_job("rt-a", 0.15, 1.0, 1),
                arrival: Duration::ZERO,
            },
            RtJob {
                job: small_job("rt-b", 0.15, 1.0, 2),
                arrival: Duration::from_millis(30),
            },
        ];
        let summary = runtime.run(jobs);
        assert_eq!(summary.completions.len(), 2);
        assert!(summary.completions.iter().all(|c| c.exit_code == 0));
        let makespan = summary.makespan_secs();
        // 0.3 cpu-s over 2 cores: finishes well under 5 wall seconds.
        assert!(makespan < 5.0, "makespan {makespan}s");
    }

    #[test]
    fn flowcon_policy_reconfigures_real_threads() {
        let config = FlowConConfig {
            initial_interval: SimDuration::from_millis(100),
            ..FlowConConfig::default()
        };
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FlowConPolicy::new(config)));
        let jobs = vec![
            RtJob {
                job: small_job("rt-long", 0.6, 1.0, 3),
                arrival: Duration::ZERO,
            },
            RtJob {
                job: small_job("rt-late", 0.2, 1.0, 4),
                arrival: Duration::from_millis(250),
            },
        ];
        let summary = runtime.run(jobs);
        assert_eq!(summary.completions.len(), 2);
        assert!(
            summary.algorithm_runs > 0,
            "the executor must have run Algorithm 1"
        );
    }

    #[test]
    fn empty_run_is_trivial() {
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FairSharePolicy::new()));
        let summary = runtime.run(vec![]);
        assert!(summary.completions.is_empty());
    }
}
