//! The real-thread runtime.
//!
//! Topology (one box per thread):
//!
//! ```text
//!  +--------------+   completions    +-------------+
//!  | container #1 |----------------->|             |
//!  +--------------+    (channel)     |             |
//!  +--------------+                  | coordinator |  measure/Alg.1/update
//!  | container #2 |----------------->|  (executor  |------------+
//!  +--------------+                  |  +listener) |            |
//!        ^  tokens                   +-------------+            v
//!  +--------------+     shares (atomics)                 rate cells
//!  |   governor   |<---------------------------------------------+
//!  +--------------+
//! ```
//!
//! Containers burn CPU in quanta gated by their token bucket; the governor
//! refills buckets at the water-filled share of node capacity; the
//! coordinator samples evaluation functions, feeds the policy (FlowCon, NA,
//! ...) and applies the returned limits — the exact worker-side loop of the
//! paper, on wall-clock time.
//!
//! # Push-based coordination, no polling
//!
//! Every wait in this runtime is a blocking condvar/channel wait released
//! by a signal, never a sleep-and-recheck loop:
//!
//! * Container threads block in [`TokenBucket::withdraw`]; a deposit wakes
//!   them, and [`TokenBucket::close`] (shutdown or a chaos kill) releases
//!   them with `false` — the thread's single exit path, so it polls no
//!   shutdown flag between quanta.
//! * The governor blocks on a [`ShutdownSignal`] with a timed condvar wait
//!   (the refill period is the one semantically-required timed wait);
//!   triggering shutdown wakes it mid-period.
//! * The coordinator blocks in `recv_timeout` on the completion channel —
//!   completions *push* into it, and the timeout only expresses the next
//!   scheduled obligation (policy tick, arrival, failure injection, chaos
//!   event), never a poll interval.
//!
//! A source-grep unit test in `crates/rt/tests/` enforces that
//! `thread::sleep` stays out of this crate for good.
//!
//! # Virtual time
//!
//! With [`RtConfig::dilation`] = `D`, one wall-clock second represents `D`
//! simulated seconds: completions are recorded at `elapsed × D`, a quantum
//! advances its job by `quantum × D` effective CPU-seconds, and policy
//! intervals (sim-seconds) wait `interval / D` of wall time.  At `D = 1`
//! the runtime is a plain wall-clock executor; at `D = 400` a 600-sim-
//! second FlowCon workload runs in ~1.5 wall seconds with identical token
//! accounting — which is what makes the sim↔rt fidelity harness CI-sized.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use flowcon_container::{ContainerId, Workload, WorkloadStatus};
use flowcon_core::metric::{progress_score, GrowthMeasurement};
use flowcon_core::policy::ResourcePolicy;
use flowcon_dl::TrainingJob;
use flowcon_metrics::summary::{CompletionRecord, RunSummary};
use flowcon_sim::alloc::{waterfill_soft_into, AllocRequest, WaterfillScratch};
use flowcon_sim::contention::ContentionModel;
use flowcon_sim::time::SimTime;

use crate::governor::{AtomicF64, RefillMath, ShutdownSignal, TokenBucket};
use crate::kernel::spin_for;

/// One governor refill target: the bucket, its granted rate, and the
/// fractional-microsecond carry that keeps deposits rate-conserving.
struct GovernorTarget {
    bucket: Arc<TokenBucket>,
    rate: Arc<AtomicF64>,
    math: RefillMath,
}

/// The governor's refill targets, shared coordinator ↔ governor.
type GovernorTargets = Arc<Mutex<Vec<GovernorTarget>>>;

/// Runtime parameters.
#[derive(Debug, Clone, Copy)]
pub struct RtConfig {
    /// Node CPU capacity in cores distributed by the governor.  For
    /// fidelity runs this is set to the sim node's `capacity` so the
    /// water-filled shares match the simulation's.
    pub capacity_cores: f64,
    /// Governor refill period (wall clock).
    pub refill_period: Duration,
    /// Compute quantum per bucket withdrawal (wall clock).
    pub quantum: Duration,
    /// Fallback executor tick when the policy does not set one (wall).
    pub default_tick: Duration,
    /// Simulated seconds per wall-clock second (see the module docs).
    pub dilation: f64,
    /// Bucket burst ceiling in quanta: how much budget a container may
    /// bank while its thread is descheduled.  Oversubscribed CI runners
    /// need headroom here so a briefly-starved thread catches up instead
    /// of dropping tokens at the ceiling — with the default 2 ms quantum
    /// the 64-quanta ceiling covers ~128 ms of OS scheduling delay, well
    /// past a loaded CFS latency target, so total virtual progress is
    /// conserved whenever the host has enough cores on average.
    pub burst_quanta: u32,
    /// Interference model applied to job *progress* (not token accounting),
    /// mirroring the simulated node's contention tax so both backends
    /// implement the same physics.
    pub contention: ContentionModel,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            capacity_cores: 2.0,
            refill_period: Duration::from_millis(5),
            quantum: Duration::from_millis(2),
            default_tick: Duration::from_millis(100),
            dilation: 1.0,
            burst_quanta: 64,
            contention: ContentionModel::default(),
        }
    }
}

/// One job submission for the real-thread runtime.
#[derive(Debug, Clone)]
pub struct RtJob {
    /// The training job (size it small: wall time is real).
    pub job: TrainingJob,
    /// Wall-clock delay after runtime start before the job is submitted.
    pub arrival: Duration,
}

/// A scheduled fault: crash the job with `label` at wall offset `at`.
#[derive(Debug, Clone)]
pub struct RtFailure {
    /// Label of the job to crash.
    pub label: String,
    /// Wall-clock offset from runtime start.
    pub at: Duration,
    /// Exit code the container reports (e.g. 137 for OOM-kill).
    pub exit_code: i32,
}

/// A chaos scenario made physically real: threads actually throttle or die.
#[derive(Debug, Clone, Copy)]
pub enum RtChaos {
    /// Throttle the first-launched container's governor rate by `factor`
    /// for its whole lifetime (a misbehaving cgroup / slow node): the
    /// water-filled share is granted, then starved at the bucket.
    Straggler {
        /// Multiplier on the victim's granted rate, in `(0, 1)`.
        factor: f64,
    },
    /// Kill the oldest live container thread at wall offset `at` (its
    /// bucket closes, the thread exits without reporting) and relaunch it
    /// `down` later on a fresh thread + bucket, resuming the same job
    /// state — a container restart that preserves the checkpoint.
    Churn {
        /// Wall-clock offset of the kill.
        at: Duration,
        /// How long the container stays down before relaunch.
        down: Duration,
    },
}

/// What [`RtRuntime::run_outcome`] reports beyond the summary: thread
/// accounting (every spawn must be matched by a join — leak-asserted in
/// tests), the completion ledger's rejections, and chaos bookkeeping.
#[derive(Debug)]
pub struct RtOutcome {
    /// Completion records and policy accounting, timestamps in virtual
    /// (dilated) seconds.
    pub summary: RunSummary,
    /// OS threads spawned (governor + one per container launch/relaunch).
    pub threads_spawned: u64,
    /// OS threads joined before returning; equals `threads_spawned` on
    /// every path — no leaked thread survives the runtime.
    pub threads_joined: u64,
    /// Completion messages refused by the [`CompletionLedger`]
    /// (duplicate or never-launched ids); always 0 for a healthy runtime.
    pub completions_rejected: u64,
    /// Container threads killed by [`RtChaos::Churn`].
    pub chaos_kills: u64,
    /// Container threads relaunched after a churn kill.
    pub chaos_restarts: u64,
}

/// Why the [`CompletionLedger`] refused a completion message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionError {
    /// The id was never launched by this runtime.
    UnknownContainer,
    /// The id already retired — a duplicate (or replayed) completion.
    Duplicate,
}

/// Tracks which container ids were launched and which have retired, so a
/// duplicate or out-of-thin-air completion message is rejected instead of
/// double-recording a job.
///
/// Pure logic, unit-tested without threads: the runtime feeds it every
/// channel message before trusting one.
#[derive(Debug, Default)]
pub struct CompletionLedger {
    /// `retired[i]` is whether container id `i` has completed.
    retired: Vec<bool>,
}

impl CompletionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CompletionLedger::default()
    }

    /// Register the next container launch, returning its id.
    pub fn launch(&mut self) -> ContainerId {
        let id = ContainerId::from_raw(self.retired.len() as u32);
        self.retired.push(false);
        id
    }

    /// Accept a completion: exactly once per launched id.
    pub fn accept(&mut self, id: ContainerId) -> Result<(), CompletionError> {
        match self.retired.get_mut(id.as_raw() as usize) {
            None => Err(CompletionError::UnknownContainer),
            Some(done) if *done => Err(CompletionError::Duplicate),
            Some(done) => {
                *done = true;
                Ok(())
            }
        }
    }

    /// Launched containers that have not retired yet.
    pub fn outstanding(&self) -> usize {
        self.retired.iter().filter(|&&d| !d).count()
    }
}

struct RtContainer {
    id: ContainerId,
    label: String,
    job: Arc<Mutex<TrainingJob>>,
    bucket: Arc<TokenBucket>,
    /// Virtual CPU-seconds consumed (written by the container thread).
    cpu_used: Arc<AtomicF64>,
    /// Current granted rate in cores (read by the governor).
    rate: Arc<AtomicF64>,
    /// Contention efficiency applied to progress (written at reshare).
    eff: Arc<AtomicF64>,
    /// Policy-assigned limit, 1.0 = unshaped.
    limit: f64,
    demand: f64,
    /// Virtual arrival time.
    arrival_at: SimTime,
    handle: Option<thread::JoinHandle<()>>,
    // Monitor baseline (virtual time).
    last_eval: Option<f64>,
    last_cpu: f64,
    last_tick: SimTime,
}

/// The runtime: spawn with a policy, feed jobs, collect a [`RunSummary`].
pub struct RtRuntime {
    config: RtConfig,
    policy: Box<dyn ResourcePolicy>,
    failures: Vec<RtFailure>,
    chaos: Option<RtChaos>,
    scratch: WaterfillScratch,
}

impl RtRuntime {
    /// Build a runtime around a policy.
    pub fn new(config: RtConfig, policy: Box<dyn ResourcePolicy>) -> Self {
        RtRuntime {
            config,
            policy,
            failures: Vec::new(),
            chaos: None,
            scratch: WaterfillScratch::new(),
        }
    }

    /// The node capacity the governor distributes (diagnostics).
    pub fn capacity_cores(&self) -> f64 {
        self.config.capacity_cores
    }

    /// Schedule fault injections (see [`RtFailure`]).
    pub fn with_failures(mut self, failures: Vec<RtFailure>) -> Self {
        self.failures = failures;
        self
    }

    /// Attach a chaos scenario (see [`RtChaos`]).
    pub fn with_chaos(mut self, chaos: RtChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Run the jobs to completion and summarize.
    pub fn run(self, jobs: Vec<RtJob>) -> RunSummary {
        self.run_outcome(jobs).summary
    }

    /// Run the jobs to completion with full thread/ledger accounting.
    pub fn run_outcome(mut self, jobs: Vec<RtJob>) -> RtOutcome {
        let mut summary = RunSummary::new(self.policy.name());
        let dilation = self.config.dilation.max(1e-9);
        let start = Instant::now();
        let (done_tx, done_rx) = bounded::<ContainerId>(jobs.len().max(1));
        let shutdown = ShutdownSignal::new();
        let mut ledger = CompletionLedger::new();
        let mut threads_spawned = 0u64;
        let mut threads_joined = 0u64;
        let mut completions_rejected = 0u64;
        let mut chaos_kills = 0u64;
        let mut chaos_restarts = 0u64;

        // Pending arrivals, earliest first (pop() takes the earliest).
        let mut pending: Vec<RtJob> = jobs;
        pending.sort_by_key(|j| j.arrival);
        pending.reverse();

        // Pending fault injections, earliest first.
        self.failures.sort_by_key(|f| f.at);
        self.failures.reverse();
        let mut failures = std::mem::take(&mut self.failures);

        // Churn schedule (wall offsets); `downed` holds the killed
        // container between kill and relaunch.
        let mut churn_kill_at: Option<Duration> = match self.chaos {
            Some(RtChaos::Churn { at, .. }) => Some(at),
            _ => None,
        };
        let mut churn_restart_at: Option<Duration> = None;
        let mut downed: Option<RtContainer> = None;

        let mut active: BTreeMap<ContainerId, RtContainer> = BTreeMap::new();

        // Governor thread: even a zero-job run spawns (and must promptly
        // join) it, so the shutdown-latency regression test exercises the
        // real teardown path.
        let governor_targets: GovernorTargets = Arc::new(Mutex::new(Vec::new()));
        let governor = {
            let targets = Arc::clone(&governor_targets);
            let shutdown = Arc::clone(&shutdown);
            let period = self.config.refill_period;
            threads_spawned += 1;
            thread::spawn(move || {
                // Timed condvar wait: one refill period per iteration,
                // released immediately by `shutdown.trigger()`.
                while !shutdown.wait_period(period) {
                    for t in targets.lock().iter_mut() {
                        let deposit = t.math.deposit_for(t.rate.load(), period);
                        if deposit > 0 {
                            t.bucket.deposit(deposit);
                        }
                    }
                }
            })
        };

        let mut tick: Duration = self
            .policy
            .initial_interval()
            .map(|d| Duration::from_secs_f64(d.as_secs_f64() / dilation))
            .unwrap_or(self.config.default_tick);
        let mut next_tick = start + tick;
        let mut algorithm_runs = 0u64;
        let mut update_calls = 0u64;

        loop {
            // 1. Process every due timed obligation: arrivals, fault
            //    injections, churn kill/restart.
            let now = start.elapsed();
            let mut pool_changed = false;

            while pending.last().is_some_and(|j| j.arrival <= now) {
                let rt_job = pending.pop().expect("just checked");
                let container = self.launch(
                    ledger.launch(),
                    rt_job.job,
                    virtual_now(now, dilation),
                    start,
                    &done_tx,
                    &governor_targets,
                );
                threads_spawned += 1;
                active.insert(container.id, container);
                pool_changed = true;
            }

            while failures.last().is_some_and(|f| f.at <= now) {
                let f = failures.pop().expect("just checked");
                // Mirror the sim's listener: inject into the labelled job
                // if it is live (active or down-but-resumable), else no-op.
                let target = active
                    .values()
                    .find(|c| c.label == f.label)
                    .or(downed.as_ref().filter(|c| c.label == f.label));
                if let Some(c) = target {
                    c.job.lock().inject_failure(f.exit_code);
                }
            }

            if churn_kill_at.is_some_and(|at| at <= now) {
                churn_kill_at = None;
                // Victim: the oldest live container. If the pool is empty
                // the kill is a no-op (nothing to churn).
                if let Some((&victim, _)) = active.iter().next() {
                    let mut c = active.remove(&victim).expect("keyed by iter");
                    c.bucket.close();
                    if let Some(h) = c.handle.take() {
                        let _ = h.join();
                        threads_joined += 1;
                    }
                    governor_targets
                        .lock()
                        .retain(|t| !Arc::ptr_eq(&t.bucket, &c.bucket));
                    chaos_kills += 1;
                    // If the job finished on its final quantum the thread
                    // already pushed a completion — keep the container
                    // parked for that message instead of relaunching.
                    let still_running = c.job.lock().status() == WorkloadStatus::Running;
                    if still_running {
                        if let Some(RtChaos::Churn { down, .. }) = self.chaos {
                            churn_restart_at = Some(now + down);
                        }
                    }
                    downed = Some(c);
                    pool_changed = true;
                }
            }

            if churn_restart_at.is_some_and(|at| at <= now) {
                churn_restart_at = None;
                if let Some(dead) = downed.take() {
                    let revived = self.relaunch(dead, start, &done_tx, &governor_targets);
                    threads_spawned += 1;
                    chaos_restarts += 1;
                    active.insert(revived.id, revived);
                    pool_changed = true;
                }
            }

            if pool_changed {
                let ids: Vec<ContainerId> = active.keys().copied().collect();
                if self.policy.on_pool_change(virtual_now(now, dilation), &ids) {
                    self.reconfigure(
                        virtual_now(now, dilation),
                        &mut active,
                        &mut algorithm_runs,
                        &mut update_calls,
                        &mut tick,
                        dilation,
                    );
                    next_tick = Instant::now() + tick;
                }
                self.reshare(&active);
            }

            if pending.is_empty() && active.is_empty() && downed.is_none() {
                break;
            }

            // 2. Block for a completion (push) or the next obligation.
            let mut deadline = next_tick;
            if let Some(j) = pending.last() {
                deadline = deadline.min(start + j.arrival);
            }
            if let Some(f) = failures.last() {
                deadline = deadline.min(start + f.at);
            }
            if let Some(at) = churn_kill_at {
                deadline = deadline.min(start + at);
            }
            if let Some(at) = churn_restart_at {
                deadline = deadline.min(start + at);
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            match done_rx.recv_timeout(timeout) {
                Ok(id) => {
                    if ledger.accept(id).is_err() {
                        completions_rejected += 1;
                        continue;
                    }
                    let now = start.elapsed();
                    let retired = if let Some(c) = active.remove(&id) {
                        Some(c)
                    } else if downed.as_ref().is_some_and(|c| c.id == id) {
                        // The job finished on the quantum racing its kill;
                        // its completion retires the parked container.
                        churn_restart_at = None;
                        downed.take()
                    } else {
                        None
                    };
                    if let Some(mut c) = retired {
                        if let Some(h) = c.handle.take() {
                            let _ = h.join();
                            threads_joined += 1;
                        }
                        let status = c.job.lock().status();
                        summary.completions.push(CompletionRecord {
                            label: c.label.clone(),
                            arrival: c.arrival_at,
                            finished: virtual_now(now, dilation),
                            exit_code: match status {
                                WorkloadStatus::Failed(code) => code,
                                _ => 0,
                            },
                        });
                        governor_targets
                            .lock()
                            .retain(|t| !Arc::ptr_eq(&t.bucket, &c.bucket));
                    }
                    let ids: Vec<ContainerId> = active.keys().copied().collect();
                    if self.policy.on_pool_change(virtual_now(now, dilation), &ids) {
                        self.reconfigure(
                            virtual_now(now, dilation),
                            &mut active,
                            &mut algorithm_runs,
                            &mut update_calls,
                            &mut tick,
                            dilation,
                        );
                        next_tick = Instant::now() + tick;
                    }
                    self.reshare(&active);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= next_tick {
                        let now = start.elapsed();
                        self.reconfigure(
                            virtual_now(now, dilation),
                            &mut active,
                            &mut algorithm_runs,
                            &mut update_calls,
                            &mut tick,
                            dilation,
                        );
                        self.reshare(&active);
                        next_tick = Instant::now() + tick;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Teardown: wake the governor mid-period, release any straggling
        // container threads (none on the normal path — the loop only exits
        // when every container retired), and join everything.
        shutdown.trigger();
        for t in governor_targets.lock().iter() {
            t.bucket.close();
        }
        for (_, mut c) in std::mem::take(&mut active) {
            c.bucket.close();
            if let Some(h) = c.handle.take() {
                let _ = h.join();
                threads_joined += 1;
            }
        }
        if let Some(c) = downed.take() {
            // A parked churn victim's thread was already joined at kill
            // time; nothing left but the bucket.
            c.bucket.close();
            debug_assert!(c.handle.is_none(), "killed threads join at kill time");
        }
        let _ = governor.join();
        threads_joined += 1;

        summary.algorithm_runs = algorithm_runs;
        summary.update_calls = update_calls;
        debug_assert_eq!(threads_spawned, threads_joined, "thread leak");
        RtOutcome {
            summary,
            threads_spawned,
            threads_joined,
            completions_rejected,
            chaos_kills,
            chaos_restarts,
        }
    }

    /// Spawn one container thread.
    fn launch(
        &self,
        id: ContainerId,
        job: TrainingJob,
        arrival_at: SimTime,
        start: Instant,
        done_tx: &Sender<ContainerId>,
        governor_targets: &GovernorTargets,
    ) -> RtContainer {
        let label = Workload::label(&job).to_string();
        let demand = Workload::demand(&job);
        let job = Arc::new(Mutex::new(job));
        let cpu_used = Arc::new(AtomicF64::new(0.0));
        self.spawn_thread(
            id,
            label,
            job,
            cpu_used,
            demand,
            arrival_at,
            start,
            done_tx,
            governor_targets,
        )
    }

    /// Relaunch a churn-killed container: fresh thread + bucket, same job.
    fn relaunch(
        &self,
        dead: RtContainer,
        start: Instant,
        done_tx: &Sender<ContainerId>,
        governor_targets: &GovernorTargets,
    ) -> RtContainer {
        let mut revived = self.spawn_thread(
            dead.id,
            dead.label,
            dead.job,
            dead.cpu_used,
            dead.demand,
            dead.arrival_at,
            start,
            done_tx,
            governor_targets,
        );
        // The monitor baseline survives the restart (the job state did).
        revived.limit = dead.limit;
        revived.last_eval = dead.last_eval;
        revived.last_cpu = dead.last_cpu;
        revived.last_tick = dead.last_tick;
        revived
    }

    /// The shared spawn path for launch and relaunch.
    #[allow(clippy::too_many_arguments)]
    fn spawn_thread(
        &self,
        id: ContainerId,
        label: String,
        job: Arc<Mutex<TrainingJob>>,
        cpu_used: Arc<AtomicF64>,
        demand: f64,
        arrival_at: SimTime,
        start: Instant,
        done_tx: &Sender<ContainerId>,
        governor_targets: &GovernorTargets,
    ) -> RtContainer {
        let quantum = self.config.quantum;
        let quantum_us = (quantum.as_micros() as u64).max(1);
        let burst_us = quantum_us.saturating_mul(self.config.burst_quanta.max(1) as u64);
        let bucket = TokenBucket::new(burst_us.max(1_000));
        let rate = Arc::new(AtomicF64::new(0.0));
        let eff = Arc::new(AtomicF64::new(1.0));
        governor_targets.lock().push(GovernorTarget {
            bucket: Arc::clone(&bucket),
            rate: Arc::clone(&rate),
            math: RefillMath::new(),
        });

        let handle = {
            let bucket = Arc::clone(&bucket);
            let job = Arc::clone(&job);
            let cpu_used = Arc::clone(&cpu_used);
            let eff = Arc::clone(&eff);
            let done_tx = done_tx.clone();
            let dilation = self.config.dilation.max(1e-9);
            thread::spawn(move || {
                // Pure push loop: block on the bucket, burn, advance.  The
                // only exit signals are a closed bucket (shutdown/kill) and
                // the job leaving the Running state.
                loop {
                    if !bucket.withdraw(quantum_us) {
                        return;
                    }
                    spin_for(quantum);
                    let finished = {
                        let mut j = job.lock();
                        let now_virtual = virtual_now(start.elapsed(), dilation);
                        let virtual_cpu = quantum.as_secs_f64() * dilation;
                        // Tokens meter *allocated* CPU; contention taxes
                        // the useful progress extracted from it, exactly
                        // as the fluid node does.
                        j.advance(now_virtual, virtual_cpu * eff.load());
                        cpu_used.fetch_add(virtual_cpu);
                        j.status() != WorkloadStatus::Running
                    };
                    if finished {
                        let _ = done_tx.send(id);
                        return;
                    }
                }
            })
        };

        RtContainer {
            id,
            label,
            job,
            bucket,
            cpu_used,
            rate,
            eff,
            limit: 1.0,
            demand,
            arrival_at,
            handle: Some(handle),
            last_eval: None,
            last_cpu: 0.0,
            last_tick: arrival_at,
        }
    }

    /// Measure + run the policy + apply limits (the Executor's job).
    /// All timestamps and rates are in virtual (dilated) units, so the
    /// policy sees the same scales as in the simulation.
    fn reconfigure(
        &mut self,
        now: SimTime,
        active: &mut BTreeMap<ContainerId, RtContainer>,
        algorithm_runs: &mut u64,
        update_calls: &mut u64,
        tick: &mut Duration,
        dilation: f64,
    ) {
        let mut measures = Vec::with_capacity(active.len());
        for c in active.values_mut() {
            let eval_now = c.job.lock().eval(now);
            let cpu_now = c.cpu_used.load();
            let dt = (now.as_secs_f64() - c.last_tick.as_secs_f64()).max(0.0);
            let growth = if dt > 1e-6 {
                let avg_cpu = (cpu_now - c.last_cpu) / dt;
                let p = match (eval_now, c.last_eval) {
                    (Some(e), Some(prev)) => progress_score(e, prev, dt),
                    _ => None,
                };
                c.last_tick = now;
                c.last_eval = eval_now.or(c.last_eval);
                c.last_cpu = cpu_now;
                p.map(|p| (p, avg_cpu))
            } else {
                None
            };
            measures.push(GrowthMeasurement {
                id: c.id,
                progress: growth.map(|(p, _)| p),
                avg_usage: flowcon_sim::ResourceVec::cpu(growth.map_or(0.0, |(_, a)| a)),
                cpu_limit: c.limit,
            });
        }
        let decision = self.policy.reconfigure(now, &measures);
        *algorithm_runs += 1;
        for (id, limit) in decision.updates {
            if let Some(c) = active.get_mut(&id) {
                c.limit = limit;
                *update_calls += 1;
            }
        }
        if let Some(next) = decision.next_interval {
            *tick = Duration::from_secs_f64(next.as_secs_f64() / dilation);
        }
    }

    /// Recompute governor rates and contention efficiencies from the
    /// current limits/demands — the **same** soft-cap water-filling and
    /// `container_efficiency` inputs the simulated node uses
    /// (`AllocRequest { limit, demand, weight: 1.0 }` through
    /// `waterfill_soft_into`), so the two backends share one allocator.
    fn reshare(&mut self, active: &BTreeMap<ContainerId, RtContainer>) {
        if active.is_empty() {
            return;
        }
        let requests: Vec<AllocRequest> = active
            .values()
            .map(|c| AllocRequest {
                limit: c.limit,
                demand: c.demand,
                weight: 1.0,
            })
            .collect();
        waterfill_soft_into(&mut self.scratch, self.config.capacity_cores, &requests);
        let n = active.len();
        let straggler = match self.chaos {
            Some(RtChaos::Straggler { factor }) => Some(factor.clamp(1e-3, 1.0)),
            _ => None,
        };
        for (c, &share) in active.values().zip(self.scratch.rates()) {
            let mut granted = share;
            if let Some(factor) = straggler {
                // Victim: the first-launched container, for determinism.
                if c.id == ContainerId::from_raw(0) {
                    granted *= factor;
                }
            }
            c.rate.store(granted);
            let shaped = c.limit < 0.999;
            c.eff
                .store(self.config.contention.container_efficiency(n, shaped));
        }
    }
}

/// Wall-clock elapsed time as a (dilated) simulation timestamp.
fn virtual_now(elapsed: Duration, dilation: f64) -> SimTime {
    SimTime::from_secs_f64(elapsed.as_secs_f64() * dilation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_core::config::FlowConConfig;
    use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
    use flowcon_dl::models::{ModelId, ModelSpec};
    use flowcon_sim::rng::SimRng;
    use flowcon_sim::time::SimDuration;

    /// A small job: `work` CPU-seconds of a GRU-shaped model.
    fn small_job(label: &str, work: f64, demand: f64, seed: u64) -> TrainingJob {
        let mut spec = ModelSpec::of(ModelId::Gru);
        spec.total_work = work;
        spec.demand = demand;
        let mut rng = SimRng::new(seed);
        TrainingJob::with_label(spec, label, &mut rng)
    }

    #[test]
    fn jobs_complete_under_baseline() {
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FairSharePolicy::new()));
        let jobs = vec![
            RtJob {
                job: small_job("rt-a", 0.15, 1.0, 1),
                arrival: Duration::ZERO,
            },
            RtJob {
                job: small_job("rt-b", 0.15, 1.0, 2),
                arrival: Duration::from_millis(30),
            },
        ];
        let summary = runtime.run(jobs);
        assert_eq!(summary.completions.len(), 2);
        assert!(summary.completions.iter().all(|c| c.exit_code == 0));
        let makespan = summary.makespan_secs();
        // 0.3 cpu-s over 2 cores: finishes well under 5 wall seconds.
        assert!(makespan < 5.0, "makespan {makespan}s");
    }

    #[test]
    fn flowcon_policy_reconfigures_real_threads() {
        let config = FlowConConfig {
            initial_interval: SimDuration::from_millis(100),
            ..FlowConConfig::default()
        };
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FlowConPolicy::new(config)));
        let jobs = vec![
            RtJob {
                job: small_job("rt-long", 0.6, 1.0, 3),
                arrival: Duration::ZERO,
            },
            RtJob {
                job: small_job("rt-late", 0.2, 1.0, 4),
                arrival: Duration::from_millis(250),
            },
        ];
        let summary = runtime.run(jobs);
        assert_eq!(summary.completions.len(), 2);
        assert!(
            summary.algorithm_runs > 0,
            "the executor must have run Algorithm 1"
        );
    }

    #[test]
    fn empty_run_spawns_and_joins_the_governor() {
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FairSharePolicy::new()));
        let outcome = runtime.run_outcome(vec![]);
        assert!(outcome.summary.completions.is_empty());
        assert_eq!(outcome.threads_spawned, 1, "governor only");
        assert_eq!(outcome.threads_joined, 1);
        assert_eq!(outcome.completions_rejected, 0);
    }

    #[test]
    fn ledger_rejects_duplicates_and_unknown_ids() {
        let mut ledger = CompletionLedger::new();
        let a = ledger.launch();
        let b = ledger.launch();
        assert_eq!(ledger.outstanding(), 2);
        assert_eq!(ledger.accept(a), Ok(()));
        assert_eq!(
            ledger.accept(a),
            Err(CompletionError::Duplicate),
            "a container completes exactly once"
        );
        assert_eq!(
            ledger.accept(ContainerId::from_raw(99)),
            Err(CompletionError::UnknownContainer),
            "never-launched ids are rejected"
        );
        assert_eq!(ledger.accept(b), Ok(()));
        assert_eq!(ledger.outstanding(), 0);
    }

    #[test]
    fn dilated_run_reports_virtual_completions() {
        // 0.08 virtual CPU-seconds at dilation 10: the wall run burns
        // ~8 ms of spin but the record must be stamped in virtual time.
        let config = RtConfig {
            capacity_cores: 1.0,
            dilation: 10.0,
            contention: ContentionModel::ideal(),
            ..RtConfig::default()
        };
        let runtime = RtRuntime::new(config, Box::new(FairSharePolicy::new()));
        let summary = runtime.run(vec![RtJob {
            job: small_job("rt-dilated", 0.08, 1.0, 5),
            arrival: Duration::ZERO,
        }]);
        assert_eq!(summary.completions.len(), 1);
        let c = &summary.completions[0];
        // Virtual sojourn ≈ work / rate = 0.08 s; wall overheads dilate
        // through, so allow a generous upper bound (ratio, not ms).
        assert!(c.completion_secs() > 0.0);
        assert!(
            c.completion_secs() < 5.0,
            "virtual sojourn {}s should be well under 5 virtual seconds",
            c.completion_secs()
        );
    }

    #[test]
    fn failure_injection_crashes_the_labelled_job() {
        let runtime = RtRuntime::new(RtConfig::default(), Box::new(FairSharePolicy::new()))
            .with_failures(vec![RtFailure {
                label: "rt-doomed".into(),
                at: Duration::from_millis(20),
                exit_code: 137,
            }]);
        let summary = runtime.run(vec![
            RtJob {
                job: small_job("rt-doomed", 5.0, 1.0, 6),
                arrival: Duration::ZERO,
            },
            RtJob {
                job: small_job("rt-clean", 0.1, 1.0, 7),
                arrival: Duration::ZERO,
            },
        ]);
        assert_eq!(summary.completions.len(), 2);
        let doomed = summary
            .completions
            .iter()
            .find(|c| c.label == "rt-doomed")
            .unwrap();
        assert_eq!(doomed.exit_code, 137);
        let clean = summary
            .completions
            .iter()
            .find(|c| c.label == "rt-clean")
            .unwrap();
        assert_eq!(clean.exit_code, 0);
    }
}
