//! `Session`-parity surface for the real-thread backend.
//!
//! The fluid simulation is configured through
//! `flowcon_core::session::Session::builder()`; this module makes the
//! wall-clock runtime a *second backend behind the same surface*: build
//! the very same fluent chain, call
//! [`SessionBuilder::into_spec`](flowcon_core::session::SessionBuilder::into_spec)
//! instead of `build()`, and hand the spec to [`RtSessionBuilder`]:
//!
//! ```
//! use flowcon_core::session::Session;
//! use flowcon_dl::workload::WorkloadPlan;
//! use flowcon_rt::{RtConfig, RtSessionBuilder};
//!
//! let spec = Session::builder()
//!     .plan(WorkloadPlan::random_n(2, 7))
//!     .into_spec();
//! let summary = RtSessionBuilder::from_spec(spec)
//!     .config(RtConfig {
//!         dilation: 400.0,
//!         ..RtConfig::default()
//!     })
//!     .build()
//!     .run();
//! assert_eq!(summary.completions.len(), 2);
//! ```
//!
//! # Workload identity across backends
//!
//! The simulated worker consumes its node RNG in exactly one place: one
//! `rng.split()` per job at admission, in plan order.  The builder here
//! replays that — `SimRng::new(node.seed)`, jobs constructed with
//! [`TrainingJob::with_label`] in plan order — so each job's jittered
//! total work and noise stream are **bit-identical** between sim and rt.
//! That identity is what makes the differential fidelity harness's
//! per-job sojourn ratios meaningful.

use std::time::Duration;

use flowcon_core::session::SessionSpec;
use flowcon_dl::TrainingJob;
use flowcon_metrics::summary::RunSummary;
use flowcon_sim::rng::SimRng;

use crate::runtime::{RtChaos, RtConfig, RtFailure, RtJob, RtOutcome, RtRuntime};

/// Builds an [`RtSession`] from a backend-generic [`SessionSpec`].
pub struct RtSessionBuilder {
    spec: SessionSpec,
    config: RtConfig,
    chaos: Option<RtChaos>,
}

impl RtSessionBuilder {
    /// Start from a spec extracted via `SessionBuilder::into_spec`.
    ///
    /// The node's capacity and contention model are stamped into the
    /// runtime config at [`build`](RtSessionBuilder::build) time, so both
    /// backends share one notion of the machine.
    pub fn from_spec(spec: SessionSpec) -> Self {
        RtSessionBuilder {
            spec,
            config: RtConfig::default(),
            chaos: None,
        }
    }

    /// Runtime knobs (dilation, refill period, quantum, ...).  The
    /// spec's node capacity and contention model override the config's
    /// at build time — they are workload facts, not runtime knobs.
    pub fn config(mut self, config: RtConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a chaos scenario (wall-clock offsets; divide sim offsets by
    /// the dilation).
    pub fn chaos(mut self, chaos: RtChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Assemble the session: construct the jobs with the node-seeded RNG
    /// in plan order (see the module docs) and convert sim-time arrivals
    /// and failure times to wall clock through the dilation.
    pub fn build(self) -> RtSession {
        let mut config = self.config;
        config.capacity_cores = self.spec.node.capacity;
        config.contention = self.spec.node.contention;
        let dilation = config.dilation.max(1e-9);

        let mut rng = SimRng::new(self.spec.node.seed);
        let jobs: Vec<RtJob> = self
            .spec
            .plan
            .jobs
            .iter()
            .map(|request| RtJob {
                job: TrainingJob::with_label(
                    request.scaled_spec(),
                    request.label.clone(),
                    &mut rng,
                ),
                arrival: Duration::from_secs_f64(request.arrival.as_secs_f64() / dilation),
            })
            .collect();

        let failures: Vec<RtFailure> = self
            .spec
            .failures
            .iter()
            .map(|f| RtFailure {
                label: f.label.clone(),
                at: Duration::from_secs_f64(f.at.as_secs_f64() / dilation),
                exit_code: f.exit_code,
            })
            .collect();

        let mut runtime = RtRuntime::new(config, self.spec.policy).with_failures(failures);
        if let Some(chaos) = self.chaos {
            runtime = runtime.with_chaos(chaos);
        }
        RtSession { runtime, jobs }
    }
}

/// A fully-configured wall-clock session, ready to run.
pub struct RtSession {
    runtime: RtRuntime,
    jobs: Vec<RtJob>,
}

impl RtSession {
    /// Run to completion; completion records are stamped in virtual
    /// (dilated) seconds, directly comparable to the simulation's.
    pub fn run(self) -> RunSummary {
        self.runtime.run(self.jobs)
    }

    /// Run to completion with thread/ledger accounting (see
    /// [`RtOutcome`]).
    pub fn run_outcome(self) -> RtOutcome {
        self.runtime.run_outcome(self.jobs)
    }
}

#[cfg(test)]
impl RtSession {
    /// Test-only peek at the stamped capacity.
    fn runtime_capacity(&self) -> f64 {
        self.runtime.capacity_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_core::config::NodeConfig;
    use flowcon_core::session::Session;
    use flowcon_dl::workload::WorkloadPlan;

    #[test]
    fn spec_round_trips_the_plan_through_real_threads() {
        let plan = WorkloadPlan::random_n(3, 11);
        let mut expected: Vec<String> = plan.jobs.iter().map(|j| j.label.clone()).collect();
        let spec = Session::builder()
            .node(NodeConfig::default().with_seed(11))
            .plan(plan)
            .into_spec();
        let summary = RtSessionBuilder::from_spec(spec)
            .config(RtConfig {
                dilation: 2000.0,
                ..RtConfig::default()
            })
            .build()
            .run();
        let mut got: Vec<String> = summary
            .completions
            .iter()
            .map(|c| c.label.clone())
            .collect();
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "every planned job completes exactly once");
    }

    #[test]
    fn node_capacity_overrides_the_config() {
        let spec = Session::builder()
            .node(NodeConfig {
                capacity: 3.5,
                ..NodeConfig::default()
            })
            .into_spec();
        let session = RtSessionBuilder::from_spec(spec)
            .config(RtConfig {
                capacity_cores: 99.0,
                ..RtConfig::default()
            })
            .build();
        assert_eq!(session.runtime_capacity(), 3.5);
    }
}
