//! # flowcon-rt
//!
//! **Real-thread execution mode**: the same FlowCon policies driving real
//! OS threads instead of the fluid simulation.
//!
//! Each container is a worker thread running a synthetic compute kernel;
//! a user-space **token-bucket governor** enforces the policy's soft CPU
//! limits (deposit rate ∝ water-filled share), a coordinator thread plays
//! the Executor/listener roles against wall-clock time, and completions
//! flow back over a channel.  This closes the "it only works in
//! simulation" gap: the control loop — measure evaluation functions,
//! compute growth efficiency, run Algorithm 1, apply limits — is exercised
//! against genuinely parallel execution with `parking_lot` locks,
//! `crossbeam` channels and atomics.
//!
//! Scale note: experiments here use *small* jobs (fractions of a CPU-second)
//! so the test suite stays fast; the machinery is identical at any scale.
//! With [`RtConfig::dilation`] > 1 the runtime also compresses sim-scale
//! workloads into CI-sized wall time while keeping records in sim units —
//! see [`runtime`] for the virtual-time contract and [`session`] for the
//! `Session`-parity builder that makes this a drop-in second backend.
//!
//! Coordination is **push-based everywhere** (condvar/channel, no
//! sleep-loop polling); the invariant is documented in [`governor`] and
//! grep-enforced by a unit test in `tests/rt_backend.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod governor;
pub mod kernel;
pub mod runtime;
pub mod session;

pub use governor::{AtomicF64, RefillMath, ShutdownSignal, TokenBucket};
pub use kernel::spin_for;
pub use runtime::{
    CompletionError, CompletionLedger, RtChaos, RtConfig, RtFailure, RtJob, RtOutcome, RtRuntime,
};
pub use session::{RtSession, RtSessionBuilder};
