//! The token-bucket CPU governor.
//!
//! A user-space reimplementation of what cgroups' CFS bandwidth controller
//! does for Docker: each container owns a bucket holding *CPU-microseconds*
//! of budget.  A governor thread deposits budget at the container's granted
//! rate (its water-filled share of node capacity); the container's worker
//! thread withdraws one quantum before each compute burst, blocking when
//! the bucket is empty — which is exactly how a throttled container
//! experiences its limit.
//!
//! # Coordination is push-based
//!
//! Nothing in this module sleeps or polls.  Container threads block on the
//! bucket's condvar and are woken by deposits (or released by
//! [`TokenBucket::close`]); the governor thread blocks on a
//! [`ShutdownSignal`] condvar with a *timed* wait — the refill period is
//! the one place a timed wait is semantically required, and triggering
//! shutdown wakes it immediately instead of letting it finish the period.
//! A unit test in `crates/rt/tests/` greps this crate's sources to keep
//! `thread::sleep` out of the coordination paths for good.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A closable token bucket measured in CPU-microseconds.
pub struct TokenBucket {
    state: Mutex<State>,
    available: Condvar,
    /// Burst ceiling: deposits beyond this are dropped (a throttled
    /// container must not bank unbounded credit while idle).
    burst_us: u64,
}

struct State {
    tokens_us: u64,
    closed: bool,
}

impl TokenBucket {
    /// A bucket with the given burst ceiling.
    pub fn new(burst_us: u64) -> Arc<Self> {
        Arc::new(TokenBucket {
            state: Mutex::new(State {
                tokens_us: 0,
                closed: false,
            }),
            available: Condvar::new(),
            burst_us: burst_us.max(1),
        })
    }

    /// Deposit budget (governor side), saturating at the burst ceiling.
    pub fn deposit(&self, us: u64) {
        let mut s = self.state.lock();
        s.tokens_us = (s.tokens_us + us).min(self.burst_us);
        drop(s);
        self.available.notify_all();
    }

    /// Withdraw `us` of budget, blocking until available.
    ///
    /// Returns `false` if the bucket was closed (shutdown or a chaos kill)
    /// before the budget could be satisfied — the container thread's one
    /// exit signal, so the thread needs no shutdown flag to poll.
    pub fn withdraw(&self, us: u64) -> bool {
        let mut s = self.state.lock();
        loop {
            if s.closed {
                return false;
            }
            if s.tokens_us >= us {
                s.tokens_us -= us;
                return true;
            }
            self.available.wait(&mut s);
        }
    }

    /// Like [`TokenBucket::withdraw`] but gives up after `timeout`.
    pub fn withdraw_timeout(&self, us: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        loop {
            if s.closed {
                return false;
            }
            if s.tokens_us >= us {
                s.tokens_us -= us;
                return true;
            }
            if self.available.wait_until(&mut s, deadline).timed_out() {
                return false;
            }
        }
    }

    /// Close the bucket: blocked and future withdrawals return `false`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Current balance (for tests/diagnostics).
    pub fn balance_us(&self) -> u64 {
        self.state.lock().tokens_us
    }
}

/// Pure refill arithmetic: converts a granted rate into whole-microsecond
/// deposits while conserving the fractional remainder.
///
/// A rate of `r` cores over a refill period of `p` µs is worth `r·p` µs of
/// budget — rarely an integer.  Truncating every period would silently
/// under-deliver up to one microsecond *per period* (at a 5 ms period
/// that is 0.02% per container, compounding across reconfigures); the
/// carry keeps the running total within one microsecond of exact *forever*,
/// across arbitrary rate reconfiguration sequences.  The conservation and
/// monotonicity contracts are proptested in `crates/rt/tests/`.
#[derive(Debug, Clone, Default)]
pub struct RefillMath {
    /// Fractional microseconds earned but not yet deposited, in `[0, 1)`.
    carry_us: f64,
}

impl RefillMath {
    /// Fresh math with no carried remainder.
    pub fn new() -> Self {
        RefillMath::default()
    }

    /// Whole microseconds to deposit for one period at `rate_cores`.
    ///
    /// Non-finite or negative rates deposit nothing (and clear the carry —
    /// a poisoned rate must not leak stale credit).
    pub fn deposit_for(&mut self, rate_cores: f64, period: Duration) -> u64 {
        if !rate_cores.is_finite() || rate_cores <= 0.0 {
            self.carry_us = 0.0;
            return 0;
        }
        let exact = rate_cores * period.as_secs_f64() * 1e6 + self.carry_us;
        let whole = exact.floor();
        self.carry_us = (exact - whole).clamp(0.0, 1.0 - f64::EPSILON);
        whole as u64
    }

    /// The carried fractional microseconds (diagnostics/tests).
    pub fn carry_us(&self) -> f64 {
        self.carry_us
    }
}

/// A shutdown flag the governor thread waits on instead of sleeping.
///
/// `wait_period` blocks for one refill period *or* until [`trigger`] is
/// called, whichever comes first — so a runtime tearing down never waits
/// out a refill period it no longer needs (the regression test pins a
/// zero-job run shutting down in well under one period).
///
/// [`trigger`]: ShutdownSignal::trigger
#[derive(Default)]
pub struct ShutdownSignal {
    down: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownSignal {
    /// A fresh, un-triggered signal.
    pub fn new() -> Arc<Self> {
        Arc::new(ShutdownSignal::default())
    }

    /// Flip the flag and wake every waiter immediately.
    pub fn trigger(&self) {
        *self.down.lock() = true;
        self.cv.notify_all();
    }

    /// Whether shutdown has been triggered.
    pub fn is_triggered(&self) -> bool {
        *self.down.lock()
    }

    /// Block for `period` or until triggered; returns `true` on shutdown.
    pub fn wait_period(&self, period: Duration) -> bool {
        let deadline = Instant::now() + period;
        let mut down = self.down.lock();
        while !*down {
            if self.cv.wait_until(&mut down, deadline).timed_out() {
                return *down;
            }
        }
        true
    }
}

/// An `f64` stored in an atomic (rate cells shared governor ↔ coordinator).
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Load the value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Store a value.
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta`, returning the new value (CAS loop).
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(new),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn deposit_then_withdraw() {
        let b = TokenBucket::new(10_000);
        b.deposit(5_000);
        assert!(b.withdraw(3_000));
        assert_eq!(b.balance_us(), 2_000);
    }

    #[test]
    fn burst_ceiling_caps_balance() {
        let b = TokenBucket::new(1_000);
        b.deposit(50_000);
        assert_eq!(b.balance_us(), 1_000);
    }

    #[test]
    fn withdraw_blocks_until_deposit() {
        // Deposit-before-withdraw and withdraw-blocked-then-deposit both
        // resolve to `true`; no sleep needed to force an interleaving
        // because the contract holds either way.
        let b = TokenBucket::new(10_000);
        let b2 = Arc::clone(&b);
        let waiter = thread::spawn(move || b2.withdraw(1_000));
        b.deposit(1_000);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn close_releases_blocked_waiters() {
        let b = TokenBucket::new(10_000);
        let b2 = Arc::clone(&b);
        let waiter = thread::spawn(move || b2.withdraw(1_000));
        b.close();
        assert!(!waiter.join().unwrap());
        assert!(!b.withdraw(1), "closed bucket refuses new withdrawals");
    }

    #[test]
    fn close_wins_over_remaining_balance() {
        // Closing is a kill: a killed container must stop even with budget
        // left, otherwise churn teardown could run one extra quantum.
        let b = TokenBucket::new(10_000);
        b.deposit(5_000);
        b.close();
        assert!(!b.withdraw(1_000));
    }

    #[test]
    fn withdraw_timeout_times_out() {
        let b = TokenBucket::new(10_000);
        assert!(!b.withdraw_timeout(1_000, Duration::from_millis(10)));
    }

    #[test]
    fn refill_math_carries_fractions_exactly() {
        let mut m = RefillMath::new();
        let period = Duration::from_millis(5);
        // 0.3 cores × 5000 µs = 1500 µs exactly: no carry accumulates.
        assert_eq!(m.deposit_for(0.3, period), 1_500);
        assert!(m.carry_us() < 1e-9, "carry {}", m.carry_us());
        // 0.333 cores × 5000 µs = 1665 µs exactly representable too; use a
        // genuinely fractional rate instead.
        let mut m = RefillMath::new();
        let mut total = 0u64;
        for _ in 0..1000 {
            total += m.deposit_for(1.0 / 3.0, period);
        }
        let exact = (1.0 / 3.0) * 5_000.0 * 1000.0;
        assert!(
            (total as f64 - exact).abs() < 1.0,
            "total {total} vs exact {exact}"
        );
    }

    #[test]
    fn refill_math_rejects_poisoned_rates() {
        let mut m = RefillMath::new();
        assert_eq!(m.deposit_for(f64::NAN, Duration::from_millis(5)), 0);
        assert_eq!(m.deposit_for(-1.0, Duration::from_millis(5)), 0);
        assert_eq!(m.deposit_for(f64::INFINITY, Duration::from_millis(5)), 0);
        assert_eq!(m.carry_us(), 0.0, "poisoned rates clear the carry");
    }

    #[test]
    fn shutdown_signal_wakes_waiters_immediately() {
        let s = ShutdownSignal::new();
        let s2 = Arc::clone(&s);
        let started = Instant::now();
        let waiter = thread::spawn(move || s2.wait_period(Duration::from_secs(30)));
        s.trigger();
        assert!(waiter.join().unwrap(), "triggered wait reports shutdown");
        assert!(
            started.elapsed() < Duration::from_secs(15),
            "waiter must not sit out the period"
        );
        assert!(s.is_triggered());
    }

    #[test]
    fn shutdown_signal_times_out_false_when_idle() {
        let s = ShutdownSignal::new();
        assert!(!s.wait_period(Duration::from_millis(5)));
    }

    #[test]
    fn atomic_f64_roundtrip_and_add() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(2.25);
        assert_eq!(a.load(), 2.25);
        assert_eq!(a.fetch_add(0.75), 3.0);
    }
}
