//! The token-bucket CPU governor.
//!
//! A user-space reimplementation of what cgroups' CFS bandwidth controller
//! does for Docker: each container owns a bucket holding *CPU-microseconds*
//! of budget.  A governor thread deposits budget at the container's granted
//! rate (its water-filled share of node capacity); the container's worker
//! thread withdraws one quantum before each compute burst, blocking when
//! the bucket is empty — which is exactly how a throttled container
//! experiences its limit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A closable token bucket measured in CPU-microseconds.
pub struct TokenBucket {
    state: Mutex<State>,
    available: Condvar,
    /// Burst ceiling: deposits beyond this are dropped (a throttled
    /// container must not bank unbounded credit while idle).
    burst_us: u64,
}

struct State {
    tokens_us: u64,
    closed: bool,
}

impl TokenBucket {
    /// A bucket with the given burst ceiling.
    pub fn new(burst_us: u64) -> Arc<Self> {
        Arc::new(TokenBucket {
            state: Mutex::new(State {
                tokens_us: 0,
                closed: false,
            }),
            available: Condvar::new(),
            burst_us: burst_us.max(1),
        })
    }

    /// Deposit budget (governor side), saturating at the burst ceiling.
    pub fn deposit(&self, us: u64) {
        let mut s = self.state.lock();
        s.tokens_us = (s.tokens_us + us).min(self.burst_us);
        drop(s);
        self.available.notify_all();
    }

    /// Withdraw `us` of budget, blocking until available.
    ///
    /// Returns `false` if the bucket was closed (shutdown) before the
    /// budget could be satisfied.
    pub fn withdraw(&self, us: u64) -> bool {
        let mut s = self.state.lock();
        loop {
            if s.tokens_us >= us {
                s.tokens_us -= us;
                return true;
            }
            if s.closed {
                return false;
            }
            self.available.wait(&mut s);
        }
    }

    /// Like [`TokenBucket::withdraw`] but gives up after `timeout`.
    pub fn withdraw_timeout(&self, us: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.state.lock();
        loop {
            if s.tokens_us >= us {
                s.tokens_us -= us;
                return true;
            }
            if s.closed {
                return false;
            }
            if self.available.wait_until(&mut s, deadline).timed_out() {
                return false;
            }
        }
    }

    /// Close the bucket: blocked and future withdrawals return `false`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Current balance (for tests/diagnostics).
    pub fn balance_us(&self) -> u64 {
        self.state.lock().tokens_us
    }
}

/// An `f64` stored in an atomic (rate cells shared governor ↔ coordinator).
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Load the value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Store a value.
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta`, returning the new value (CAS loop).
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(new),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn deposit_then_withdraw() {
        let b = TokenBucket::new(10_000);
        b.deposit(5_000);
        assert!(b.withdraw(3_000));
        assert_eq!(b.balance_us(), 2_000);
    }

    #[test]
    fn burst_ceiling_caps_balance() {
        let b = TokenBucket::new(1_000);
        b.deposit(50_000);
        assert_eq!(b.balance_us(), 1_000);
    }

    #[test]
    fn withdraw_blocks_until_deposit() {
        let b = TokenBucket::new(10_000);
        let b2 = Arc::clone(&b);
        let waiter = thread::spawn(move || b2.withdraw(1_000));
        thread::sleep(Duration::from_millis(20));
        b.deposit(1_000);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn close_releases_blocked_waiters() {
        let b = TokenBucket::new(10_000);
        let b2 = Arc::clone(&b);
        let waiter = thread::spawn(move || b2.withdraw(1_000));
        thread::sleep(Duration::from_millis(20));
        b.close();
        assert!(!waiter.join().unwrap());
        assert!(!b.withdraw(1), "closed bucket refuses new withdrawals");
    }

    #[test]
    fn withdraw_timeout_times_out() {
        let b = TokenBucket::new(10_000);
        assert!(!b.withdraw_timeout(1_000, Duration::from_millis(10)));
    }

    #[test]
    fn atomic_f64_roundtrip_and_add() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(2.25);
        assert_eq!(a.load(), 2.25);
        assert_eq!(a.fetch_add(0.75), 3.0);
    }
}
