//! The synthetic compute kernel.
//!
//! Stands in for a training step: a tight integer-mixing loop that keeps a
//! core busy for a requested duration.  The mixing state is returned (and
//! thus observable) so the optimizer cannot delete the loop.

use std::time::{Duration, Instant};

/// One round of SplitMix64-style mixing.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Burn CPU for approximately `duration`, returning the mixed state.
///
/// Checks the clock every few thousand iterations, so the overshoot is
/// bounded by one check period (microseconds) rather than by timer slop.
pub fn spin_for(duration: Duration) -> u64 {
    let start = Instant::now();
    let mut state = 0x5EED_F10C_u64;
    loop {
        for _ in 0..4096 {
            state = mix(state);
        }
        if start.elapsed() >= duration {
            return state;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_takes_roughly_the_requested_time() {
        let want = Duration::from_millis(20);
        let start = Instant::now();
        let state = spin_for(want);
        let took = start.elapsed();
        assert_ne!(state, 0);
        assert!(took >= want, "took {took:?}");
        assert!(
            took < want + Duration::from_millis(15),
            "took {took:?}, expected ≈{want:?}"
        );
    }
}
