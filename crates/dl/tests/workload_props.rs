//! Property-based tests on the DL workload substrate: the invariants the
//! growth-efficiency metric implicitly assumes.

use flowcon_container::workload::{Workload, WorkloadStatus};
use flowcon_dl::models::{ModelSpec, ALL_MODELS};
use flowcon_dl::TrainingJob;
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::SimTime;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ModelSpec> {
    (0..ALL_MODELS.len()).prop_map(|i| ModelSpec::of(ALL_MODELS[i]))
}

proptest! {
    /// Quality (and hence accuracy) is monotone in consumed compute for
    /// every catalog model, whatever the step sizes.
    #[test]
    fn quality_is_monotone_in_compute(
        spec in arb_model(),
        steps in prop::collection::vec(0.0f64..10.0, 1..60),
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut job = TrainingJob::new(spec, &mut rng);
        let mut last_quality = job.quality();
        let mut t = 0u64;
        for step in steps {
            t += 1;
            job.advance(SimTime::from_secs(t), step);
            let q = job.quality();
            prop_assert!(q >= last_quality - 1e-12, "quality decreased");
            prop_assert!((0.0..=1.0).contains(&q));
            last_quality = q;
        }
    }

    /// The noise-free evaluation value always lies between the function's
    /// initial and converged magnitudes.
    #[test]
    fn true_eval_stays_in_range(
        spec in arb_model(),
        consumed in 0.0f64..500.0,
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut job = TrainingJob::new(spec.clone(), &mut rng);
        job.advance(SimTime::from_secs(1), consumed);
        let v = job.true_eval();
        let lo = spec.eval.initial.min(spec.eval.converged);
        let hi = spec.eval.initial.max(spec.eval.converged);
        prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&v), "eval {v} outside [{lo},{hi}]");
    }

    /// Measured (noisy) evaluation values stay finite and near the truth.
    #[test]
    fn measured_eval_is_finite_and_close(
        spec in arb_model(),
        consumed in 1.0f64..300.0,
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut job = TrainingJob::new(spec.clone(), &mut rng);
        job.advance(SimTime::from_secs(1), consumed);
        if let Some(e) = job.eval(SimTime::from_secs(1)) {
            prop_assert!(e.is_finite());
            let truth = job.true_eval();
            let tol = 0.25 * spec.eval.magnitude().max(0.1);
            prop_assert!((e - truth).abs() < tol, "eval {e} vs truth {truth}");
        }
    }

    /// `remaining + consumed == total` up to clamping, and status flips to
    /// Finished exactly when remaining hits zero.
    #[test]
    fn work_accounting_is_consistent(
        spec in arb_model(),
        fractions in prop::collection::vec(0.0f64..0.4, 1..20),
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut job = TrainingJob::new(spec, &mut rng);
        let total = job.remaining_cpu_seconds().unwrap();
        let mut consumed = 0.0;
        for (i, f) in fractions.iter().enumerate() {
            let step = f * total;
            job.advance(SimTime::from_secs(i as u64 + 1), step);
            consumed += step;
            let remaining = job.remaining_cpu_seconds().unwrap();
            prop_assert!(
                (remaining - (total - consumed).max(0.0)).abs() < 1e-6,
                "remaining {remaining}, expected {}",
                (total - consumed).max(0.0)
            );
            let done = job.status() == WorkloadStatus::Finished;
            prop_assert_eq!(done, remaining <= 0.0);
        }
    }

    /// Demand and footprint are sane for every model.
    #[test]
    fn demand_and_footprint_are_valid(spec in arb_model(), seed in 0u64..100) {
        let mut rng = SimRng::new(seed);
        let job = TrainingJob::new(spec, &mut rng);
        prop_assert!(job.demand() > 0.0 && job.demand() <= 1.0);
        let fp = job.footprint();
        prop_assert!(fp.is_valid());
        prop_assert!(fp.get(flowcon_sim::ResourceKind::Cpu) == 0.0, "cpu is the allocator's");
    }

    /// Two jobs from the same spec and seed are identical; different seeds
    /// differ in total work (the ±3% instance jitter).
    #[test]
    fn instance_jitter_is_seeded(spec in arb_model(), seed in 0u64..1000) {
        let mk = |s: u64| {
            let mut rng = SimRng::new(s);
            TrainingJob::new(spec.clone(), &mut rng)
                .remaining_cpu_seconds()
                .unwrap()
        };
        prop_assert_eq!(mk(seed), mk(seed));
        let spread = (mk(seed) - spec.total_work).abs();
        prop_assert!(spread <= spec.total_work * 0.03 + 1e-9);
    }
}
