//! Experiment workload generators.
//!
//! Encodes the three workload families of the paper's evaluation:
//!
//! * **Fixed scheduling** (§5.3): VAE (PyTorch) at 0 s, MNIST (PyTorch) at
//!   40 s, MNIST (TensorFlow) at 80 s.
//! * **Random scheduling** (§5.4): five models — LSTM-CFC, VAE, VAET,
//!   MNIST, GRU — submitted at times drawn uniformly from 0–200 s.
//! * **Scalability** (§5.5): 10 or 15 jobs sampled from the catalog, random
//!   arrivals in 0–200 s.

use flowcon_sim::rng::SimRng;
use flowcon_sim::time::SimTime;

use crate::models::{ModelId, ModelSpec, TABLE1_MODELS};

/// One job submission: which model, when, and (optionally) how much work.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Instance label, e.g. `Job-3` (random workloads) or the model label.
    pub label: String,
    /// The model to train.
    pub model: ModelId,
    /// Submission time.
    pub arrival: SimTime,
    /// Multiplier on the model's calibrated `total_work` (1.0 = the
    /// catalog value).  Duration-hint-aware trace binding sets this so a
    /// bound job's nominal solo duration matches the trace's
    /// `duration_hint_secs`; see [`JobRequest::scaled_spec`].
    pub work_scale: f64,
}

impl JobRequest {
    /// A request for `model` arriving at `arrival`, at the model's
    /// calibrated work (`work_scale` 1.0).
    pub fn new(label: impl Into<String>, model: ModelId, arrival: SimTime) -> Self {
        JobRequest {
            label: label.into(),
            model,
            arrival,
            work_scale: 1.0,
        }
    }

    /// Override the work multiplier (finite, `> 0`).
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "work_scale must be finite and > 0, got {scale}"
        );
        self.work_scale = scale;
        self
    }

    /// The model spec this request runs: the catalog entry with
    /// `total_work` multiplied by [`JobRequest::work_scale`]
    /// (via [`ModelSpec::scaled_by`], the canonical definition) — exactly
    /// what a wall-clock duration recorded in a cluster trace describes.
    pub fn scaled_spec(&self) -> ModelSpec {
        ModelSpec::of(self.model).scaled_by(self.work_scale)
    }
}

/// An ordered set of job submissions.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    /// Requests sorted by arrival time.
    pub jobs: Vec<JobRequest>,
}

impl WorkloadPlan {
    /// Wrap and sort requests by arrival (stable on label for ties).
    pub fn new(mut jobs: Vec<JobRequest>) -> Self {
        jobs.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.label.cmp(&b.label)));
        WorkloadPlan { jobs }
    }

    /// Number of jobs in the plan.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// §5.3's fixed schedule: VAE@0s, MNIST-PyTorch@40s, MNIST-TF@80s.
    pub fn fixed_three() -> Self {
        WorkloadPlan::new(vec![
            JobRequest::new(
                ModelSpec::of(ModelId::Vae).label(),
                ModelId::Vae,
                SimTime::from_secs(0),
            ),
            JobRequest::new(
                ModelSpec::of(ModelId::MnistTorch).label(),
                ModelId::MnistTorch,
                SimTime::from_secs(40),
            ),
            JobRequest::new(
                ModelSpec::of(ModelId::MnistTf).label(),
                ModelId::MnistTf,
                SimTime::from_secs(80),
            ),
        ])
    }

    /// §5.4's five-model random schedule with arrivals in `[0, 200)` s.
    ///
    /// Jobs are labelled `Job-1` … `Job-5` in arrival order, as in Fig. 9.
    pub fn random_five(seed: u64) -> Self {
        const MODELS: [ModelId; 5] = [
            ModelId::LstmCfc,
            ModelId::Vae,
            ModelId::VaeTf,
            ModelId::MnistTorch,
            ModelId::Gru,
        ];
        Self::random_from(&MODELS, seed)
    }

    /// §5.5's scalability mixes: `n` jobs drawn round-robin from Table 1's
    /// models, random arrivals in `[0, 200)` s, labelled in arrival order.
    pub fn random_n(n: usize, seed: u64) -> Self {
        let models: Vec<ModelId> = (0..n)
            .map(|i| TABLE1_MODELS[i % TABLE1_MODELS.len()])
            .collect();
        Self::random_from(&models, seed)
    }

    /// Random arrivals for an explicit model list, labelled `Job-<k>` by
    /// arrival order (the paper's convention: "the responsible jobs are
    /// marked as 1, 2, 3, 4 and 5").
    pub fn random_from(models: &[ModelId], seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut arrivals: Vec<(SimTime, ModelId)> = models
            .iter()
            .map(|&m| (SimTime::from_secs_f64(rng.range_f64(0.0, 200.0)), m))
            .collect();
        arrivals.sort_by_key(|&(t, _)| t);
        let jobs = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, (arrival, model))| JobRequest::new(format!("Job-{}", i + 1), model, arrival))
            .collect();
        WorkloadPlan { jobs }
    }

    /// All five Fig. 1 models submitted simultaneously at t=0.
    pub fn fig1_concurrent() -> Self {
        const MODELS: [ModelId; 5] = [
            ModelId::Vae,
            ModelId::MnistTorch,
            ModelId::LstmCfc,
            ModelId::Gru,
            ModelId::LogReg,
        ];
        WorkloadPlan::new(
            MODELS
                .iter()
                .map(|&m| JobRequest::new(ModelSpec::of(m).label(), m, SimTime::ZERO))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_three_matches_section_5_3() {
        let plan = WorkloadPlan::fixed_three();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.jobs[0].model, ModelId::Vae);
        assert_eq!(plan.jobs[0].arrival, SimTime::from_secs(0));
        assert_eq!(plan.jobs[1].model, ModelId::MnistTorch);
        assert_eq!(plan.jobs[1].arrival, SimTime::from_secs(40));
        assert_eq!(plan.jobs[2].model, ModelId::MnistTf);
        assert_eq!(plan.jobs[2].arrival, SimTime::from_secs(80));
    }

    #[test]
    fn random_five_uses_the_papers_models() {
        let plan = WorkloadPlan::random_five(42);
        assert_eq!(plan.len(), 5);
        let mut models: Vec<ModelId> = plan.jobs.iter().map(|j| j.model).collect();
        models.sort();
        let mut expected = vec![
            ModelId::LstmCfc,
            ModelId::Vae,
            ModelId::VaeTf,
            ModelId::MnistTorch,
            ModelId::Gru,
        ];
        expected.sort();
        assert_eq!(models, expected);
    }

    #[test]
    fn random_arrivals_within_window_and_sorted() {
        for seed in 0..20 {
            let plan = WorkloadPlan::random_n(15, seed);
            assert_eq!(plan.len(), 15);
            let mut last = SimTime::ZERO;
            for job in &plan.jobs {
                assert!(job.arrival >= last, "arrivals sorted");
                assert!(job.arrival < SimTime::from_secs(200));
                last = job.arrival;
            }
        }
    }

    #[test]
    fn labels_follow_arrival_order() {
        let plan = WorkloadPlan::random_five(7);
        for (i, job) in plan.jobs.iter().enumerate() {
            assert_eq!(job.label, format!("Job-{}", i + 1));
        }
    }

    #[test]
    fn plans_are_seed_deterministic() {
        assert_eq!(WorkloadPlan::random_n(10, 5), WorkloadPlan::random_n(10, 5));
        assert_ne!(WorkloadPlan::random_n(10, 5), WorkloadPlan::random_n(10, 6));
    }

    #[test]
    fn work_scale_defaults_to_calibrated_and_scales_only_total_work() {
        let base = JobRequest::new("j", ModelId::Gru, SimTime::ZERO);
        assert_eq!(base.work_scale, 1.0);
        let spec = ModelSpec::of(ModelId::Gru);
        assert_eq!(base.scaled_spec(), spec);
        let scaled = base.clone().with_work_scale(2.5);
        let s = scaled.scaled_spec();
        assert!((s.total_work - 2.5 * spec.total_work).abs() < 1e-12);
        assert_eq!(s.demand, spec.demand, "only the work is scaled");
        assert_eq!(s.curve, spec.curve);
    }

    #[test]
    #[should_panic(expected = "work_scale must be finite")]
    fn non_positive_work_scale_is_rejected() {
        let _ = JobRequest::new("j", ModelId::Gru, SimTime::ZERO).with_work_scale(0.0);
    }

    #[test]
    fn fig1_is_five_concurrent_models() {
        let plan = WorkloadPlan::fig1_concurrent();
        assert_eq!(plan.len(), 5);
        assert!(plan.jobs.iter().all(|j| j.arrival == SimTime::ZERO));
    }
}
