//! The calibrated model catalog (Table 1 + Fig. 1).
//!
//! Each entry fixes the knobs that determine how a training job looks to
//! FlowCon: the total effective compute it needs, the CPU fraction it can
//! exploit, the convergence-curve shape, and the evaluation function's
//! magnitudes.  The numbers are calibrated so that
//!
//! * the paper's fixed three-job schedule (§5.3) reproduces its NA baseline
//!   (VAE-dominated makespan near 394 s, MNIST-TF completing near 85 s),
//! * growth-efficiency values span the scales of Figs. 13–14 (fast jobs peak
//!   well above 0.5, slow jobs stay below ~0.07), and
//! * LSTM-CFC has the low demand ceiling visible in Fig. 11 (a lone CFC job
//!   uses only ~20% of the node).
//!
//! Docker images: PyTorch models run from `pytorch/pytorch:latest`,
//! TensorFlow models from `tensorflow/tensorflow:latest` (§2.1).

use flowcon_sim::resources::ResourceVec;

use crate::curve::ConvergenceCurve;
use crate::evalfn::{EvalFunction, EvalKind};

/// The DL framework a model trains on (Table 1's "Plat." column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// PyTorch ("P").
    PyTorch,
    /// TensorFlow ("T").
    TensorFlow,
}

impl Framework {
    /// Display name used in job labels, matching the paper's figures.
    pub const fn display(self) -> &'static str {
        match self {
            Framework::PyTorch => "Pytorch",
            Framework::TensorFlow => "Tensorflow",
        }
    }

    /// The docker image reference jobs of this framework run from.
    pub const fn image(self) -> &'static str {
        match self {
            Framework::PyTorch => "pytorch/pytorch:latest",
            Framework::TensorFlow => "tensorflow/tensorflow:latest",
        }
    }
}

/// Identifiers for the catalog models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// Variational autoencoder on PyTorch.
    Vae,
    /// Variational autoencoder on TensorFlow ("VAET" in §5.4).
    VaeTf,
    /// MNIST classifier on PyTorch.
    MnistTorch,
    /// MNIST classifier on TensorFlow.
    MnistTf,
    /// LSTM (convolution-fed, "CFC") on TensorFlow.
    LstmCfc,
    /// LSTM-CRF on PyTorch.
    LstmCrf,
    /// Bidirectional RNN on TensorFlow.
    BiRnn,
    /// Gated recurrent unit on TensorFlow.
    Gru,
    /// Logistic regression on TensorFlow (Fig. 1 only).
    LogReg,
}

/// Every catalog model, in a stable order.
pub const ALL_MODELS: [ModelId; 9] = [
    ModelId::Vae,
    ModelId::VaeTf,
    ModelId::MnistTorch,
    ModelId::MnistTf,
    ModelId::LstmCfc,
    ModelId::LstmCrf,
    ModelId::BiRnn,
    ModelId::Gru,
    ModelId::LogReg,
];

/// The six models of Table 1 (the paper's experiment pool).
pub const TABLE1_MODELS: [ModelId; 8] = [
    ModelId::Vae,
    ModelId::VaeTf,
    ModelId::MnistTorch,
    ModelId::MnistTf,
    ModelId::LstmCfc,
    ModelId::LstmCrf,
    ModelId::BiRnn,
    ModelId::Gru,
];

/// A fully calibrated workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Catalog identity.
    pub id: ModelId,
    /// Short model name, e.g. `MNIST`.
    pub name: &'static str,
    /// Training framework.
    pub framework: Framework,
    /// Evaluation function with calibrated magnitudes.
    pub eval: EvalFunction,
    /// Convergence profile of the model's *accuracy* (Fig. 1's axis).
    pub curve: ConvergenceCurve,
    /// Convergence profile of the *evaluation function* FlowCon samples,
    /// when it differs from the accuracy curve.
    ///
    /// Real training frequently saturates accuracy early while the loss
    /// keeps decreasing for the rest of the run — exactly what the paper's
    /// Fig. 14 shows: the winning job's growth efficiency decays gradually
    /// over its whole lifetime even though Fig. 1-style accuracy converges
    /// in the first ~15%.  `None` means the eval tracks the accuracy curve.
    pub eval_curve: Option<ConvergenceCurve>,
    /// Total effective CPU-seconds to run all epochs.
    pub total_work: f64,
    /// Largest node fraction the training loop can exploit.
    pub demand: f64,
    /// Relative measurement noise on the evaluation value.
    pub noise: f64,
    /// Final accuracy reported when fully trained (for Fig. 1 axes).
    pub final_accuracy: f64,
    /// Steady memory / block-I/O / network-I/O usage while training
    /// (fractions of node capacity; the CPU component is unused).
    pub footprint: ResourceVec,
}

impl ModelSpec {
    /// The paper-style label, e.g. `MNIST (Tensorflow)`.
    pub fn label(&self) -> String {
        format!("{} ({})", self.name, self.framework.display())
    }

    /// The convergence curve the evaluation function follows.
    pub fn eval_curve(&self) -> ConvergenceCurve {
        self.eval_curve.unwrap_or(self.curve)
    }

    /// Growth efficiency of a *fresh* job at full allocation:
    /// `magnitude · g'(0) / total_work`.  Used by calibration tests.
    pub fn initial_growth_efficiency(&self) -> f64 {
        self.eval.magnitude() * self.eval_curve().slope(0.0) / self.total_work
    }

    /// This spec with `total_work` multiplied by `work_scale` — the one
    /// definition of a "work-scaled spec" (duration-hint-aware binding):
    /// only the work changes, every other calibrated property (demand
    /// ceiling, convergence curves, noise) stays intact, so a scaled job
    /// is the same model trained for more or fewer epochs.
    pub fn scaled_by(mut self, work_scale: f64) -> ModelSpec {
        assert!(
            work_scale.is_finite() && work_scale > 0.0,
            "work_scale must be finite and > 0, got {work_scale}"
        );
        self.total_work *= work_scale;
        self
    }

    /// Look up the calibrated spec for a model.
    pub fn of(id: ModelId) -> ModelSpec {
        use EvalKind::*;
        use Framework::*;
        use ModelId::*;
        match id {
            // Long PyTorch VAE: slow, steady convergence.  Dominates the
            // fixed-schedule makespan (§5.3).
            Vae => ModelSpec {
                id,
                name: "VAE",
                framework: PyTorch,
                eval: EvalFunction::new(ReconstructionLoss, 4.0, 1.0),
                curve: ConvergenceCurve::Exponential { k: 3.5 },
                eval_curve: None,
                total_work: 224.0,
                demand: 0.85,
                noise: 0.02,
                final_accuracy: 0.82,
                footprint: ResourceVec::new(0.0, 0.30, 0.08, 0.01),
            },
            // TensorFlow VAE variant (labelled "VAET" in §5.4), a bit
            // shorter.  Same model family as `Vae`, hence the shared name.
            VaeTf => ModelSpec {
                id,
                name: "VAE",
                framework: TensorFlow,
                eval: EvalFunction::new(ReconstructionLoss, 4.2, 1.0),
                curve: ConvergenceCurve::Exponential { k: 4.0 },
                eval_curve: None,
                total_work: 190.0,
                demand: 0.80,
                noise: 0.02,
                final_accuracy: 0.80,
                footprint: ResourceVec::new(0.0, 0.28, 0.08, 0.01),
            },
            MnistTorch => ModelSpec {
                id,
                name: "MNIST",
                framework: PyTorch,
                eval: EvalFunction::new(CrossEntropy, 2.3, 0.05),
                curve: ConvergenceCurve::Exponential { k: 8.0 },
                eval_curve: None,
                total_work: 93.0,
                demand: 0.80,
                noise: 0.02,
                final_accuracy: 0.97,
                footprint: ResourceVec::new(0.0, 0.18, 0.12, 0.02),
            },
            // The short TensorFlow MNIST script whose completion time Table 2
            // tracks across every parameter setting.
            MnistTf => ModelSpec {
                id,
                name: "MNIST",
                framework: TensorFlow,
                eval: EvalFunction::new(CrossEntropy, 2.3, 0.05),
                curve: ConvergenceCurve::Exponential { k: 10.0 },
                eval_curve: None,
                total_work: 24.0,
                demand: 0.75,
                noise: 0.02,
                final_accuracy: 0.96,
                footprint: ResourceVec::new(0.0, 0.15, 0.12, 0.02),
            },
            // Low demand ceiling per Fig. 11: a lone CFC uses ~20% of the
            // node.  Softmax accuracy reported on a percent scale.
            LstmCfc => ModelSpec {
                id,
                name: "LSTM-CFC",
                framework: TensorFlow,
                eval: EvalFunction::new(Softmax, 10.0, 92.0),
                curve: ConvergenceCurve::Exponential { k: 6.0 },
                // Accuracy-style softmax keeps moving through the long CFC
                // run: FlowCon sees sustained progress (percent scale).
                eval_curve: Some(ConvergenceCurve::Exponential { k: 2.5 }),
                total_work: 130.0,
                demand: 0.22,
                noise: 0.015,
                final_accuracy: 0.92,
                footprint: ResourceVec::new(0.0, 0.22, 0.05, 0.01),
            },
            LstmCrf => ModelSpec {
                id,
                name: "LSTM-CRF",
                framework: PyTorch,
                eval: EvalFunction::new(SquaredLoss, 1.6, 0.04),
                curve: ConvergenceCurve::Exponential { k: 7.0 },
                eval_curve: Some(ConvergenceCurve::Exponential { k: 4.0 }),
                total_work: 150.0,
                demand: 0.80,
                noise: 0.02,
                final_accuracy: 0.90,
                footprint: ResourceVec::new(0.0, 0.25, 0.06, 0.01),
            },
            BiRnn => ModelSpec {
                id,
                name: "Bi-RNN",
                framework: TensorFlow,
                eval: EvalFunction::new(Softmax, 5.0, 95.0),
                curve: ConvergenceCurve::Exponential { k: 9.0 },
                eval_curve: Some(ConvergenceCurve::Exponential { k: 3.5 }),
                total_work: 90.0,
                demand: 0.70,
                noise: 0.015,
                final_accuracy: 0.95,
                footprint: ResourceVec::new(0.0, 0.20, 0.05, 0.01),
            },
            // The paper's steepest curve: ~96.8% of final quality at 14.5%
            // of cumulative time (§2.2).
            Gru => ModelSpec {
                id,
                name: "RNN-GRU",
                framework: TensorFlow,
                // Accuracy saturates at ~15% of the run (Fig. 1) but the
                // quadratic training loss keeps falling for the whole run,
                // which is what gives Fig. 14 its slowly decaying growth
                // efficiency.
                eval: EvalFunction::new(QuadraticLoss, 11.0, 0.1),
                curve: ConvergenceCurve::Exponential { k: 24.0 },
                eval_curve: Some(ConvergenceCurve::Exponential { k: 5.0 }),
                total_work: 80.0,
                demand: 0.75,
                noise: 0.02,
                final_accuracy: 0.932,
                footprint: ResourceVec::new(0.0, 0.16, 0.04, 0.01),
            },
            // Fig. 1's near-linear learner.
            LogReg => ModelSpec {
                id,
                name: "Logistic Regression",
                framework: TensorFlow,
                eval: EvalFunction::new(CrossEntropy, 0.9, 0.3),
                curve: ConvergenceCurve::PowerLaw { p: 1.0 },
                eval_curve: None,
                total_work: 60.0,
                demand: 0.50,
                noise: 0.01,
                final_accuracy: 0.88,
                footprint: ResourceVec::new(0.0, 0.08, 0.10, 0.02),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_has_sane_parameters() {
        for id in ALL_MODELS {
            let m = ModelSpec::of(id);
            assert!(m.total_work > 0.0, "{id:?}");
            assert!(m.demand > 0.0 && m.demand <= 1.0, "{id:?}");
            assert!(m.noise >= 0.0 && m.noise < 0.2, "{id:?}");
            assert!(m.eval.magnitude() > 0.0, "{id:?}");
            assert!(m.final_accuracy > 0.0 && m.final_accuracy <= 1.0, "{id:?}");
        }
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            ModelSpec::of(ModelId::MnistTf).label(),
            "MNIST (Tensorflow)"
        );
        assert_eq!(ModelSpec::of(ModelId::Vae).label(), "VAE (Pytorch)");
    }

    #[test]
    fn growth_efficiency_scales_span_fig13_fig14() {
        // Winners (Fig. 14) peak above 0.5; slow jobs (Fig. 13) start below
        // ~0.07.
        let gru = ModelSpec::of(ModelId::Gru).initial_growth_efficiency();
        assert!(gru > 0.5, "GRU G0 = {gru}");
        let vae = ModelSpec::of(ModelId::Vae).initial_growth_efficiency();
        assert!(vae < 0.07, "VAE G0 = {vae}");
        let mnist_tf = ModelSpec::of(ModelId::MnistTf).initial_growth_efficiency();
        assert!(mnist_tf > 0.5, "MNIST-TF G0 = {mnist_tf}");
    }

    #[test]
    fn cfc_has_low_demand_ceiling() {
        // Fig. 11: a lone LSTM-CFC job uses only ~20% of the node.
        let cfc = ModelSpec::of(ModelId::LstmCfc);
        assert!(cfc.demand < 0.3, "demand {}", cfc.demand);
    }

    #[test]
    fn frameworks_map_to_images() {
        assert_eq!(Framework::PyTorch.image(), "pytorch/pytorch:latest");
        assert_eq!(
            Framework::TensorFlow.image(),
            "tensorflow/tensorflow:latest"
        );
    }

    #[test]
    fn table1_has_six_distinct_model_families() {
        // VAE and MNIST appear on both platforms; the table lists 6 rows.
        let names: std::collections::BTreeSet<&str> = TABLE1_MODELS
            .iter()
            .map(|&m| ModelSpec::of(m).name)
            .collect();
        assert_eq!(names.len(), 6, "{names:?}");
    }
}
