//! Convergence curves.
//!
//! A training job's progress is `x ∈ [0, 1]`: the fraction of its total
//! compute (epochs × per-epoch cost) performed so far.  A convergence curve
//! `g(x) ∈ [0, 1]` describes how close the model is to its final quality at
//! progress `x`.  All curves are normalized (`g(0) = 0`, `g(1) = 1`),
//! monotone, and continuous — the properties the growth-efficiency metric
//! implicitly relies on.
//!
//! The paper's Fig. 1 motivates everything: RNN-GRU reaches 90% accuracy at
//! 14.5% of its cumulative time (≈96.8% of its final quality), i.e. a very
//! steep exponential; logistic regression converges almost linearly.

/// A normalized, monotone convergence profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvergenceCurve {
    /// `g(x) = (1 - e^(-k·x)) / (1 - e^(-k))` — the classic training curve.
    ///
    /// Larger `k` means faster early convergence; `k ≈ 24` reproduces the
    /// paper's RNN-GRU observation.
    Exponential {
        /// Rate constant, must be positive.
        k: f64,
    },
    /// `g(x) = x^p` with `0 < p <= 1`; `p = 1` is linear (logistic
    /// regression in Fig. 1), smaller `p` converges faster early.
    PowerLaw {
        /// Exponent in `(0, 1]`.
        p: f64,
    },
    /// A staircase of `steps` equal plateaus riding on an exponential —
    /// models learning-rate-schedule drops (loss falls in visible steps).
    SteppedExponential {
        /// Underlying exponential rate.
        k: f64,
        /// Number of plateaus (≥ 1).
        steps: u32,
    },
}

impl ConvergenceCurve {
    /// Evaluate the curve at progress `x` (clamped to `[0, 1]`).
    pub fn level(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match *self {
            ConvergenceCurve::Exponential { k } => {
                debug_assert!(k > 0.0);
                (1.0 - (-k * x).exp()) / (1.0 - (-k).exp())
            }
            ConvergenceCurve::PowerLaw { p } => {
                debug_assert!(p > 0.0 && p <= 1.0);
                x.powf(p)
            }
            ConvergenceCurve::SteppedExponential { k, steps } => {
                debug_assert!(steps >= 1);
                // Quantize progress onto `steps` plateaus, then interpolate a
                // little within each plateau so the curve stays monotone and
                // the measured progress score never reads exactly zero
                // mid-plateau (real training loss always moves slightly).
                let s = steps as f64;
                let plateau = (x * s).floor() / s;
                let within = (x * s).fract() / s;
                let xq = plateau + 0.1 * within;
                (1.0 - (-k * xq).exp()) / (1.0 - (-k).exp())
            }
        }
    }

    /// Derivative `dg/dx` at `x` (analytic; used by tests and calibration).
    pub fn slope(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match *self {
            ConvergenceCurve::Exponential { k } => k * (-k * x).exp() / (1.0 - (-k).exp()),
            ConvergenceCurve::PowerLaw { p } => {
                if x == 0.0 && p < 1.0 {
                    // The derivative diverges at 0; report a large finite value.
                    1e6
                } else {
                    p * x.powf(p - 1.0)
                }
            }
            ConvergenceCurve::SteppedExponential { k, steps } => {
                // Within-plateau slope is 10% of the base exponential's.
                let s = steps as f64;
                let plateau = (x * s).floor() / s;
                0.1 * k * (-k * plateau).exp() / (1.0 - (-k).exp())
            }
        }
    }

    /// Progress at which the curve first reaches `level` (bisection).
    pub fn progress_for_level(&self, level: f64) -> f64 {
        let target = level.clamp(0.0, 1.0);
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.level(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURVES: [ConvergenceCurve; 4] = [
        ConvergenceCurve::Exponential { k: 24.0 },
        ConvergenceCurve::Exponential { k: 3.0 },
        ConvergenceCurve::PowerLaw { p: 1.0 },
        ConvergenceCurve::SteppedExponential { k: 8.0, steps: 5 },
    ];

    #[test]
    fn normalized_endpoints() {
        for c in CURVES {
            assert!(c.level(0.0).abs() < 1e-9, "{c:?} at 0");
            assert!((c.level(1.0) - 1.0).abs() < 1e-6, "{c:?} at 1");
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        for c in CURVES {
            let mut last = -1.0;
            for i in 0..=1000 {
                let v = c.level(i as f64 / 1000.0);
                assert!(v >= last - 1e-12, "{c:?} decreased at {i}");
                last = v;
            }
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let c = ConvergenceCurve::Exponential { k: 5.0 };
        assert_eq!(c.level(-1.0), c.level(0.0));
        assert_eq!(c.level(2.0), c.level(1.0));
    }

    #[test]
    fn gru_shape_matches_paper() {
        // Fig. 1 / §2.2: RNN-GRU reaches ~96.8% of final quality at 14.5% of
        // its cumulative time.
        let c = ConvergenceCurve::Exponential { k: 24.0 };
        let level = c.level(0.145);
        assert!(
            (level - 0.968).abs() < 0.01,
            "level at 14.5% progress = {level}"
        );
    }

    #[test]
    fn linear_power_law_is_identity() {
        let c = ConvergenceCurve::PowerLaw { p: 1.0 };
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!((c.level(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn progress_for_level_inverts_level() {
        // Exact inversion only holds for continuous curves; the stepped
        // curve jumps, so bisection lands on a plateau boundary and the
        // residual can be up to one step height.
        for c in [
            ConvergenceCurve::Exponential { k: 24.0 },
            ConvergenceCurve::Exponential { k: 3.0 },
            ConvergenceCurve::PowerLaw { p: 1.0 },
        ] {
            for target in [0.1, 0.5, 0.9, 0.968] {
                let x = c.progress_for_level(target);
                assert!(
                    (c.level(x) - target).abs() < 1e-3,
                    "{c:?}: level({x}) = {} != {target}",
                    c.level(x)
                );
            }
        }
        // The stepped curve still brackets the target monotonically.
        let c = ConvergenceCurve::SteppedExponential { k: 8.0, steps: 5 };
        let x = c.progress_for_level(0.5);
        let eps = 1e-6;
        assert!(c.level((x - eps).max(0.0)) <= 0.5 + 1e-9);
        assert!(c.level((x + eps).min(1.0)) >= 0.5 - 0.3, "within a step");
    }

    #[test]
    fn slope_is_positive_and_decreasing_for_exponential() {
        let c = ConvergenceCurve::Exponential { k: 8.0 };
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let s = c.slope(i as f64 / 10.0);
            assert!(s > 0.0);
            assert!(s <= last);
            last = s;
        }
    }

    #[test]
    fn stepped_curve_has_plateaus() {
        let c = ConvergenceCurve::SteppedExponential { k: 8.0, steps: 4 };
        // Slope within a plateau is much smaller than the jump across one.
        let within = c.level(0.20) - c.level(0.15);
        let across = c.level(0.30) - c.level(0.20);
        assert!(across > within, "across {across} within {within}");
    }
}
