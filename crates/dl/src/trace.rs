//! Training-trace recording.
//!
//! Fig. 1 plots normalized accuracy against normalized cumulative time for
//! five concurrently training models.  A [`TraceRecorder`] samples a job's
//! accuracy/loss during a run; [`TraceRecorder::normalized`] rescales the
//! series onto Fig. 1's axes.

use flowcon_sim::time::SimTime;

/// One sampled point of a training trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Sample time.
    pub at: SimTime,
    /// Raw evaluation value (loss or accuracy), if the job had measured one.
    pub eval: Option<f64>,
    /// Model accuracy on the Fig. 1 axis.
    pub accuracy: f64,
    /// Progress through the job's compute in `[0, 1]`.
    pub progress: f64,
}

/// A labelled accuracy/loss trace for one job.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    /// Job label (Fig. 1 legend entry).
    pub label: String,
    points: Vec<TracePoint>,
}

impl TraceRecorder {
    /// A recorder for one job.
    pub fn new(label: impl Into<String>) -> Self {
        TraceRecorder {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn record(&mut self, point: TracePoint) {
        self.points.push(point);
    }

    /// All samples in record order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Completion time: the time of the first sample with progress ≥ 1,
    /// falling back to the last sample.
    pub fn completion(&self) -> Option<SimTime> {
        self.points
            .iter()
            .find(|p| p.progress >= 1.0)
            .or(self.points.last())
            .map(|p| p.at)
    }

    /// The trace on Fig. 1's axes: `(cumulative time %, accuracy %)` with
    /// both coordinates normalized to `[0, 1]` by the *maximum over all
    /// traces* completion time supplied by the caller.
    pub fn normalized(&self, makespan: SimTime) -> Vec<(f64, f64)> {
        let span = makespan.as_secs_f64().max(f64::MIN_POSITIVE);
        self.points
            .iter()
            .map(|p| (p.at.as_secs_f64() / span, p.accuracy))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn point(s: u64, acc: f64, progress: f64) -> TracePoint {
        TracePoint {
            at: t(s),
            eval: Some(1.0 - acc),
            accuracy: acc,
            progress,
        }
    }

    #[test]
    fn completion_is_first_full_progress_sample() {
        let mut tr = TraceRecorder::new("GRU");
        tr.record(point(10, 0.5, 0.4));
        tr.record(point(20, 0.9, 1.0));
        tr.record(point(30, 0.9, 1.0));
        assert_eq!(tr.completion(), Some(t(20)));
    }

    #[test]
    fn completion_falls_back_to_last_sample() {
        let mut tr = TraceRecorder::new("VAE");
        tr.record(point(10, 0.2, 0.3));
        assert_eq!(tr.completion(), Some(t(10)));
        assert_eq!(TraceRecorder::new("empty").completion(), None);
    }

    #[test]
    fn normalization_scales_time_axis() {
        let mut tr = TraceRecorder::new("MNIST");
        tr.record(point(50, 0.8, 0.9));
        tr.record(point(100, 0.97, 1.0));
        let norm = tr.normalized(t(200));
        assert!((norm[0].0 - 0.25).abs() < 1e-12);
        assert!((norm[1].0 - 0.5).abs() < 1e-12);
        assert_eq!(norm[0].1, 0.8);
    }
}
