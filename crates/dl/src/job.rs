//! The training-job workload.
//!
//! [`TrainingJob`] is the payload a container runs: it consumes effective
//! CPU-seconds, walks its model's convergence curve, and exposes the noisy
//! evaluation-function value FlowCon's Container Monitor samples.

use flowcon_container::workload::{Workload, WorkloadStatus};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::SimTime;

use crate::models::ModelSpec;

/// Fraction of total work before the job emits its first measurement
/// (framework import + data loading produce no loss values).
const WARMUP_FRACTION: f64 = 0.005;

/// A deep-learning training job driven by allocated CPU time.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    spec: ModelSpec,
    label: String,
    /// Total effective CPU-seconds this instance needs (spec value ± jitter).
    total_work: f64,
    /// Effective CPU-seconds consumed so far.
    done: f64,
    /// Per-instance noise stream.
    rng: SimRng,
    /// Cached noisy evaluation value, refreshed on advance.
    last_eval: Option<f64>,
    failed: Option<i32>,
}

impl TrainingJob {
    /// Create a job from a model spec with a dedicated RNG stream.
    ///
    /// Per-instance total work is jittered by ±3% (dataset shuffling, I/O
    /// variance) so repeated instances of one model are not clones.
    pub fn new(spec: ModelSpec, rng: &mut SimRng) -> Self {
        let mut job = Self::unlabeled(spec, rng);
        job.label = job.spec.label();
        job
    }

    /// Create a job with an explicit instance label (e.g. `Job-3`).
    ///
    /// An empty label is free: the dense headless path passes
    /// `String::new()` so admitting a job performs no label allocation.
    pub fn with_label(spec: ModelSpec, label: impl Into<String>, rng: &mut SimRng) -> Self {
        let mut job = Self::unlabeled(spec, rng);
        job.label = label.into();
        job
    }

    /// Shared constructor: all the physics (RNG split, work jitter), no
    /// label `String` yet.
    fn unlabeled(spec: ModelSpec, rng: &mut SimRng) -> Self {
        let mut rng = rng.split();
        let jitter = 1.0 + 0.03 * (2.0 * rng.f64() - 1.0);
        let total_work = spec.total_work * jitter;
        TrainingJob {
            spec,
            label: String::new(),
            total_work,
            done: 0.0,
            rng,
            last_eval: None,
            failed: None,
        }
    }

    /// The model spec this job trains.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Progress through the job's compute in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.done / self.total_work).min(1.0)
    }

    /// Noise-free evaluation value at the current progress.
    ///
    /// Follows the model's *evaluation* convergence curve, which may be
    /// slower than its accuracy curve (see `ModelSpec::eval_curve`).
    pub fn true_eval(&self) -> f64 {
        self.spec
            .eval
            .value_at(self.spec.eval_curve().level(self.progress()))
    }

    /// Normalized model quality in `[0, 1]` (for Fig. 1-style accuracy axes).
    pub fn quality(&self) -> f64 {
        self.spec.curve.level(self.progress())
    }

    /// Accuracy on the paper's Fig. 1 axis: quality scaled by the model's
    /// final accuracy.
    pub fn accuracy(&self) -> f64 {
        self.quality() * self.spec.final_accuracy
    }

    /// Inject a crash: the container will exit with `code` on next advance.
    pub fn inject_failure(&mut self, code: i32) {
        self.failed = Some(code);
    }

    /// Refresh the cached noisy measurement.
    ///
    /// Noise is multiplicative on the *remaining distance to convergence*
    /// (training noise shrinks as the model converges) plus a small absolute
    /// jitter so converged jobs still wiggle — FlowCon's α threshold has to
    /// filter exactly that wiggle in practice.
    fn remeasure(&mut self) {
        let truth = self.true_eval();
        let converged = self.spec.eval.converged;
        let distance = truth - converged;
        let rel = 1.0 + self.spec.noise * self.rng.normal();
        let abs = 0.002 * self.spec.eval.magnitude() * self.rng.normal();
        self.last_eval = Some(converged + distance * rel + abs);
    }
}

impl Workload for TrainingJob {
    fn label(&self) -> &str {
        &self.label
    }

    fn demand(&self) -> f64 {
        self.spec.demand
    }

    fn advance(&mut self, _now: SimTime, cpu_seconds: f64) {
        debug_assert!(cpu_seconds >= 0.0);
        self.done = (self.done + cpu_seconds).min(self.total_work);
        if self.progress() >= WARMUP_FRACTION {
            self.remeasure();
        }
    }

    fn eval(&self, _now: SimTime) -> Option<f64> {
        self.last_eval
    }

    fn status(&self) -> WorkloadStatus {
        if let Some(code) = self.failed {
            return WorkloadStatus::Failed(code);
        }
        if self.done >= self.total_work {
            WorkloadStatus::Finished
        } else {
            WorkloadStatus::Running
        }
    }

    fn remaining_cpu_seconds(&self) -> Option<f64> {
        Some((self.total_work - self.done).max(0.0))
    }

    fn footprint(&self) -> flowcon_sim::resources::ResourceVec {
        self.spec.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelId;

    fn job(id: ModelId, seed: u64) -> TrainingJob {
        let mut rng = SimRng::new(seed);
        TrainingJob::new(ModelSpec::of(id), &mut rng)
    }

    #[test]
    fn fresh_job_has_no_measurement() {
        let j = job(ModelId::MnistTf, 1);
        assert_eq!(j.eval(SimTime::ZERO), None, "warm-up emits nothing");
        assert_eq!(j.status(), WorkloadStatus::Running);
    }

    #[test]
    fn advance_decreases_loss_monotonically_modulo_noise() {
        let mut j = job(ModelId::MnistTorch, 2);
        let mut evals = Vec::new();
        for step in 1..=50 {
            j.advance(SimTime::from_secs(step), 2.0);
            if let Some(e) = j.eval(SimTime::from_secs(step)) {
                evals.push(e);
            }
        }
        assert!(evals.len() > 40);
        // Loss should fall substantially from first to last measurement.
        assert!(
            evals.last().unwrap() < &(evals[0] * 0.2),
            "first {} last {}",
            evals[0],
            evals.last().unwrap()
        );
    }

    #[test]
    fn completes_after_total_work() {
        let mut j = job(ModelId::MnistTf, 3);
        let spec_total = ModelSpec::of(ModelId::MnistTf).total_work;
        let total = j.remaining_cpu_seconds().unwrap();
        assert!(
            (total - spec_total).abs() < spec_total * 0.04,
            "jittered total {total} vs spec {spec_total}"
        );
        j.advance(SimTime::from_secs(100), total + 1.0);
        assert_eq!(j.status(), WorkloadStatus::Finished);
        assert!((j.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn work_jitter_varies_by_instance_but_is_seed_stable() {
        let a = job(ModelId::Vae, 7).remaining_cpu_seconds().unwrap();
        let b = job(ModelId::Vae, 8).remaining_cpu_seconds().unwrap();
        let a2 = job(ModelId::Vae, 7).remaining_cpu_seconds().unwrap();
        assert_ne!(a, b, "different seeds jitter differently");
        assert_eq!(a, a2, "same seed reproduces");
    }

    #[test]
    fn accuracy_tracks_curve_times_final() {
        let mut j = job(ModelId::Gru, 4);
        assert_eq!(j.accuracy(), 0.0);
        let total = j.remaining_cpu_seconds().unwrap();
        j.advance(SimTime::from_secs(1), total);
        assert!((j.accuracy() - 0.932).abs() < 1e-9);
    }

    #[test]
    fn failure_injection_overrides_completion() {
        let mut j = job(ModelId::MnistTf, 5);
        j.inject_failure(139);
        assert_eq!(j.status(), WorkloadStatus::Failed(139));
    }

    #[test]
    fn noise_is_small_relative_to_signal() {
        let mut j = job(ModelId::MnistTorch, 6);
        j.advance(SimTime::from_secs(1), 10.0);
        let truth = j.true_eval();
        let measured = j.eval(SimTime::from_secs(1)).unwrap();
        assert!(
            (measured - truth).abs() < 0.2 * truth.max(0.1),
            "measured {measured} truth {truth}"
        );
    }
}
