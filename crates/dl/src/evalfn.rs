//! Evaluation functions (Table 1).
//!
//! Each job "uses its own evaluation function to assess its type of machine
//! learning model" (§3.3): VAE reports reconstruction loss, MNIST cross
//! entropy, the LSTMs softmax accuracy / squared loss, GRU quadratic loss.
//! FlowCon's progress score takes `|E(t_i) - E(t_{i-1})|`, so it works for
//! both decreasing (loss) and increasing (accuracy) functions.
//!
//! The mapping from a normalized convergence level `g ∈ [0, 1]` to the raw
//! evaluation value is affine: decreasing functions fall from `initial` to
//! `floor`, increasing ones climb from `initial` to `ceiling`.  The chosen
//! magnitudes put per-model growth-efficiency values on the scales seen in
//! the paper's Figs. 13–14 (winners peak near 0.6, losers below 0.07).

/// Whether convergence drives the evaluation value down or up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalDirection {
    /// Loss-like: smaller is better.
    Decreasing,
    /// Accuracy-like: larger is better.
    Increasing,
}

/// A Table-1 evaluation function with calibrated magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalFunction {
    /// Function family name (for reports).
    pub kind: EvalKind,
    /// Value at `g = 0` (untrained).
    pub initial: f64,
    /// Value at `g = 1` (converged).
    pub converged: f64,
}

/// The evaluation-function families named by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalKind {
    /// VAE reconstruction loss (per-sample scale).
    ReconstructionLoss,
    /// Classification cross entropy.
    CrossEntropy,
    /// Softmax accuracy score.
    Softmax,
    /// Squared loss.
    SquaredLoss,
    /// Quadratic loss.
    QuadraticLoss,
}

impl EvalKind {
    /// Report name matching the paper's Table 1.
    pub const fn name(self) -> &'static str {
        match self {
            EvalKind::ReconstructionLoss => "Reconstruction Loss",
            EvalKind::CrossEntropy => "Cross Entropy",
            EvalKind::Softmax => "Softmax",
            EvalKind::SquaredLoss => "Squared Loss",
            EvalKind::QuadraticLoss => "Quadratic Loss",
        }
    }
}

impl EvalFunction {
    /// Construct with explicit magnitudes.
    pub fn new(kind: EvalKind, initial: f64, converged: f64) -> Self {
        assert!(
            initial.is_finite() && converged.is_finite() && initial != converged,
            "degenerate evaluation function"
        );
        EvalFunction {
            kind,
            initial,
            converged,
        }
    }

    /// Loss direction implied by the magnitudes.
    pub fn direction(&self) -> EvalDirection {
        if self.converged < self.initial {
            EvalDirection::Decreasing
        } else {
            EvalDirection::Increasing
        }
    }

    /// Raw evaluation value at convergence level `g ∈ [0, 1]`.
    pub fn value_at(&self, g: f64) -> f64 {
        let g = g.clamp(0.0, 1.0);
        self.initial + (self.converged - self.initial) * g
    }

    /// Total magnitude swept from untrained to converged.
    pub fn magnitude(&self) -> f64 {
        (self.converged - self.initial).abs()
    }

    /// Normalized quality in `[0, 1]` from a raw value (inverse of
    /// [`EvalFunction::value_at`]); used when plotting accuracy curves.
    pub fn quality_of(&self, value: f64) -> f64 {
        ((value - self.initial) / (self.converged - self.initial)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_from_magnitudes() {
        let loss = EvalFunction::new(EvalKind::CrossEntropy, 2.3, 0.05);
        assert_eq!(loss.direction(), EvalDirection::Decreasing);
        let acc = EvalFunction::new(EvalKind::Softmax, 0.1, 0.95);
        assert_eq!(acc.direction(), EvalDirection::Increasing);
    }

    #[test]
    fn value_interpolates_endpoints() {
        let f = EvalFunction::new(EvalKind::SquaredLoss, 1.0, 0.02);
        assert_eq!(f.value_at(0.0), 1.0);
        assert!((f.value_at(1.0) - 0.02).abs() < 1e-12);
        let mid = f.value_at(0.5);
        assert!((mid - 0.51).abs() < 1e-12);
        // Clamps outside [0,1].
        assert_eq!(f.value_at(2.0), f.value_at(1.0));
    }

    #[test]
    fn quality_inverts_value() {
        let f = EvalFunction::new(EvalKind::QuadraticLoss, 2.0, 0.02);
        for g in [0.0, 0.25, 0.5, 0.99] {
            let v = f.value_at(g);
            assert!((f.quality_of(v) - g).abs() < 1e-9);
        }
    }

    #[test]
    fn magnitude_is_absolute_sweep() {
        let f = EvalFunction::new(EvalKind::Softmax, 0.1, 0.9);
        assert!((f.magnitude() - 0.8).abs() < 1e-12);
        let g = EvalFunction::new(EvalKind::CrossEntropy, 2.3, 0.05);
        assert!((g.magnitude() - 2.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn equal_endpoints_rejected() {
        EvalFunction::new(EvalKind::Softmax, 0.5, 0.5);
    }

    #[test]
    fn kind_names_match_table1() {
        assert_eq!(EvalKind::ReconstructionLoss.name(), "Reconstruction Loss");
        assert_eq!(EvalKind::CrossEntropy.name(), "Cross Entropy");
    }
}
