//! # flowcon-dl
//!
//! Deep-learning training **workload models** — the substitute for the real
//! PyTorch/TensorFlow jobs the FlowCon paper trains on its testbed.
//!
//! FlowCon never looks inside a training job: it samples the job's scalar
//! *evaluation function* (loss, accuracy, ...) through time and measures the
//! container's resource usage.  What matters for reproduction is therefore
//! the **shape of E(t) as a function of consumed compute**, which this crate
//! models analytically:
//!
//! * [`curve`] — saturating convergence curves.  Training progress `x ∈
//!   [0,1]` (fraction of the job's total compute performed) maps to a
//!   normalized convergence level `g(x)`; exponential curves with
//!   model-specific rate constants reproduce Fig. 1 (e.g. RNN-GRU reaches
//!   ≈97% of its final accuracy after ≈15% of its compute).
//! * [`evalfn`] — the evaluation-function kinds of Table 1 (cross entropy,
//!   reconstruction loss, softmax, squared/quadratic loss) mapping
//!   convergence level to the raw value FlowCon samples, plus measurement
//!   noise.
//! * [`models`] — the calibrated model catalog: the six models of Table 1
//!   (plus logistic regression from Fig. 1), with per-model total compute,
//!   demand ceiling, convergence rate and evaluation scale.
//! * [`job`] — [`job::TrainingJob`], the [`flowcon_container::Workload`]
//!   implementation driven by allocated CPU-seconds.
//! * [`workload`] — experiment workload generators: the paper's fixed
//!   three-job schedule (§5.3), the five-model random schedule (§5.4) and
//!   the 10/15-job scalability mixes (§5.5).
//! * [`trace`] — loss/accuracy trace recording used to regenerate Fig. 1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod curve;
pub mod evalfn;
pub mod job;
pub mod models;
pub mod trace;
pub mod workload;

pub use curve::ConvergenceCurve;
pub use evalfn::{EvalDirection, EvalFunction};
pub use job::TrainingJob;
pub use models::{Framework, ModelId, ModelSpec};
pub use workload::{JobRequest, WorkloadPlan};
